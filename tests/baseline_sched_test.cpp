// Tests for the related-work baseline schedulers: virtual-time fair queuing
// and weighted-fair sharing (§6), and the properties that distinguish them
// from agreement enforcement.
#include <gtest/gtest.h>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/virtual_clock.hpp"
#include "sched/weighted_fair_scheduler.hpp"

namespace sharegrid::sched {
namespace {

// --- VirtualClockQueue ------------------------------------------------------

TEST(VirtualClock, ServesProportionallyToWeights) {
  // Flows with weights 1 and 3, both continuously backlogged: over any
  // prefix, flow 1 should receive ~3x flow 0's service.
  VirtualClockQueue q({1.0, 3.0});
  for (int i = 0; i < 40; ++i) {
    q.enqueue(0, 1.0, 0);
    q.enqueue(1, 1.0, 0);
  }
  int served[2] = {0, 0};
  for (int i = 0; i < 40; ++i) ++served[q.dequeue().flow];
  EXPECT_NEAR(served[1], 30, 1);
  EXPECT_NEAR(served[0], 10, 1);
}

TEST(VirtualClock, EqualWeightsInterleave) {
  VirtualClockQueue q({1.0, 1.0});
  for (int i = 0; i < 10; ++i) {
    q.enqueue(0, 1.0, 0);
    q.enqueue(1, 1.0, 0);
  }
  int consecutive = 0;
  int max_consecutive = 0;
  std::size_t last = 2;
  while (!q.empty()) {
    const auto item = q.dequeue();
    consecutive = item.flow == last ? consecutive + 1 : 1;
    max_consecutive = std::max(max_consecutive, consecutive);
    last = item.flow;
  }
  EXPECT_LE(max_consecutive, 2);
}

TEST(VirtualClock, IdleFlowCannotBankCredit) {
  // Flow 0 stays backlogged while flow 1 idles; when flow 1 wakes up it
  // competes from the current virtual time instead of draining a backlog of
  // "saved" service (the SFQ start rule).
  VirtualClockQueue q({1.0, 1.0});
  for (int i = 0; i < 20; ++i) q.enqueue(0, 1.0, 0);
  for (int i = 0; i < 10; ++i) (void)q.dequeue();  // flow 1 idle throughout

  for (int i = 0; i < 10; ++i) q.enqueue(1, 1.0, 0);
  int flow1_in_next_10 = 0;
  for (int i = 0; i < 10; ++i) flow1_in_next_10 += q.dequeue().flow == 1;
  // Fair from now on: about half, definitely not all 10.
  EXPECT_GE(flow1_in_next_10, 4);
  EXPECT_LE(flow1_in_next_10, 6);
}

TEST(VirtualClock, CostScalesService) {
  // Equal weights, but flow 0's items cost 2x: it should get ~half the
  // item count (equal *service*, not equal items).
  VirtualClockQueue q({1.0, 1.0});
  for (int i = 0; i < 30; ++i) {
    q.enqueue(0, 2.0, 0);
    q.enqueue(1, 1.0, 0);
  }
  int served[2] = {0, 0};
  for (int i = 0; i < 30; ++i) ++served[q.dequeue().flow];
  EXPECT_NEAR(served[1], 20, 1);
  EXPECT_NEAR(served[0], 10, 1);
}

TEST(VirtualClock, PayloadsAndBacklogTracked) {
  VirtualClockQueue q({1.0});
  q.enqueue(0, 1.0, 42);
  q.enqueue(0, 1.0, 43);
  EXPECT_EQ(q.flow_backlog(0), 2u);
  EXPECT_EQ(q.dequeue().payload, 42u);  // FIFO within a flow
  EXPECT_EQ(q.flow_backlog(0), 1u);
  EXPECT_EQ(q.dequeue().payload, 43u);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.dequeue(), ContractViolation);
}

TEST(VirtualClock, ValidatesInputs) {
  EXPECT_THROW(VirtualClockQueue({}), ContractViolation);
  EXPECT_THROW(VirtualClockQueue({0.0}), ContractViolation);
  VirtualClockQueue q({1.0});
  EXPECT_THROW(q.enqueue(1, 1.0, 0), ContractViolation);
  EXPECT_THROW(q.enqueue(0, 0.0, 0), ContractViolation);
}

// --- WeightedFairScheduler ----------------------------------------------------

TEST(WeightedFair, SplitsByWeightUnderOverload) {
  WeightedFairScheduler sched(100.0, {1.0, 3.0});
  const Plan plan = sched.plan({500.0, 500.0});
  EXPECT_NEAR(plan.admitted(0), 25.0, 1e-9);
  EXPECT_NEAR(plan.admitted(1), 75.0, 1e-9);
}

TEST(WeightedFair, RedistributesIdleShare) {
  WeightedFairScheduler sched(100.0, {1.0, 1.0});
  const Plan plan = sched.plan({10.0, 500.0});
  EXPECT_NEAR(plan.admitted(0), 10.0, 1e-9);
  EXPECT_NEAR(plan.admitted(1), 90.0, 1e-9);
}

TEST(WeightedFair, HasNoUpperBoundSemantics) {
  // The contract-violating behaviour the paper fixes: alone on the system,
  // a flow takes everything regardless of any [lb, ub] it nominally holds.
  WeightedFairScheduler wfq(320.0, {1.0, 4.0});
  const Plan plan = wfq.plan({1000.0, 0.0});
  EXPECT_NEAR(plan.admitted(0), 320.0, 1e-9);  // > any 20% contract ceiling

  // The LP scheduler with B's [0.1, 0.3] really does cap at 96.
  core::AgreementGraph g;
  g.add_principal("S", 320.0);
  g.add_principal("B", 0.0);
  g.set_agreement(0, 1, 0.1, 0.3);
  const ResponseTimeScheduler lp(g, core::compute_access_levels(g));
  const Plan capped = lp.plan({0.0, 1000.0});
  EXPECT_NEAR(capped.admitted(1), 96.0, 1e-6);
}

TEST(WeightedFair, HasNoMandatoryFloorSemantics) {
  // Under a 10:1 demand skew with equal weights... weighted fair holds the
  // light flow to its share only while the heavy one is unsatisfied, which
  // is proportional, not contractual: with weights matching an 80/20 SLA
  // and demands (heavy on the 20% holder), the 80% holder's floor erodes.
  WeightedFairScheduler wfq(100.0, {0.2, 0.8});
  // The 80%-weight principal only offers 30; the other floods. WFQ gives
  // the flooder 70 — fine — but now flip roles mid-contract: if the 80%
  // holder needs its guarantee back *this window*, WFQ has already handed
  // the capacity out by weight-of-the-active-set, not by agreement.
  const Plan plan = wfq.plan({500.0, 30.0});
  EXPECT_NEAR(plan.admitted(1), 30.0, 1e-9);
  EXPECT_NEAR(plan.admitted(0), 70.0, 1e-9);
}

TEST(WeightedFair, ValidatesInputs) {
  EXPECT_THROW(WeightedFairScheduler(0.0, {1.0}), ContractViolation);
  EXPECT_THROW(WeightedFairScheduler(10.0, {}), ContractViolation);
  EXPECT_THROW(WeightedFairScheduler(10.0, {0.0, 0.0}), ContractViolation);
  EXPECT_THROW(WeightedFairScheduler(10.0, {-1.0, 2.0}), ContractViolation);
  WeightedFairScheduler ok(10.0, {1.0});
  EXPECT_THROW(ok.plan({1.0, 2.0}), ContractViolation);
}

}  // namespace
}  // namespace sharegrid::sched
