// Tests for the hardened bottom networking layer (src/net/tcp.hpp): the
// tri-state read result that distinguishes a stalled peer from a dead one,
// EINTR retry under deliberate signal bombardment, and the length-prefixed
// framing the socket control plane rides on. The suite is named Tcp so the
// CI ThreadSanitizer stage's filter picks it up alongside the control-plane
// suites.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <pthread.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "util/assert.hpp"

namespace sharegrid {
namespace {

/// Listener + connected client pair on an ephemeral loopback port.
struct LoopbackPair {
  net::Socket listener;
  net::Socket client;
  net::Socket server;

  LoopbackPair() {
    listener = net::Socket::listen_on_loopback(0);
    client = net::Socket::connect_loopback(listener.local_port());
    server = listener.accept();
  }
};

TEST(Tcp, LoopbackRoundTrip) {
  LoopbackPair pair;
  pair.client.write_all("ping");
  const net::ReadResult request = pair.server.read_some();
  ASSERT_EQ(request.status, net::ReadStatus::kData);
  EXPECT_EQ(request.data, "ping");
  pair.server.write_all("pong");
  const net::ReadResult reply = pair.client.read_some();
  ASSERT_EQ(reply.status, net::ReadStatus::kData);
  EXPECT_EQ(reply.data, "pong");
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab an ephemeral port, then free it: connecting afterwards must throw
  // rather than hang.
  std::uint16_t port = 0;
  {
    const net::Socket probe = net::Socket::listen_on_loopback(0);
    port = probe.local_port();
  }
  EXPECT_THROW(net::Socket::connect_loopback(port), ContractViolation);
}

// The satellite regression: a peer that is merely slow must surface as
// kTimedOut — repeatedly, without tearing anything down — and only an actual
// close may surface as kClosed. The old API returned an empty string for
// both, so callers gave up on stalled-but-alive peers.
TEST(Tcp, StalledPeerTimesOutWithoutClosing) {
  LoopbackPair pair;
  pair.client.set_read_timeout_ms(40);

  const net::ReadResult first = pair.client.read_some();
  EXPECT_EQ(first.status, net::ReadStatus::kTimedOut);
  EXPECT_TRUE(first.data.empty());
  // Still alive: a second attempt times out again instead of reporting the
  // peer gone, and the connection still carries data afterwards.
  EXPECT_EQ(pair.client.read_some().status, net::ReadStatus::kTimedOut);
  pair.server.write_all("late");
  const net::ReadResult late = pair.client.read_some();
  ASSERT_EQ(late.status, net::ReadStatus::kData);
  EXPECT_EQ(late.data, "late");

  pair.server.close();
  // Drain until the close shows; it must be kClosed, never a timeout.
  net::ReadResult last = pair.client.read_some();
  while (last.status == net::ReadStatus::kData) last = pair.client.read_some();
  EXPECT_EQ(last.status, net::ReadStatus::kClosed);
}

void noop_handler(int) {}

// EINTR hardening: bombard the reading thread with SIGALRM (installed
// without SA_RESTART, so recv() really does return EINTR) while a large
// transfer is in flight. Every byte must arrive and no read may masquerade
// as a peer close.
TEST(Tcp, SignalStormDoesNotCorruptReads) {
  struct sigaction action {};
  struct sigaction previous {};
  action.sa_handler = noop_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGALRM, &action, &previous), 0);

  constexpr std::size_t kTotal = 4 * 1024 * 1024;
  LoopbackPair pair;
  std::thread writer([&] {
    const std::string chunk(64 * 1024, 'x');
    std::size_t sent = 0;
    while (sent < kTotal) {
      pair.server.write_all(chunk);
      sent += chunk.size();
    }
    pair.server.close();
  });

  std::atomic<bool> reading{true};
  const pthread_t reader_thread = pthread_self();
  std::thread bomber([&] {
    while (reading.load()) {
      pthread_kill(reader_thread, SIGALRM);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::size_t received = 0;
  bool closed = false;
  while (!closed) {
    const net::ReadResult result = pair.client.read_some();
    switch (result.status) {
      case net::ReadStatus::kData:
        received += result.data.size();
        break;
      case net::ReadStatus::kTimedOut:
        break;  // keep waiting; the writer may be scheduled out
      case net::ReadStatus::kClosed:
        closed = true;
        break;
    }
  }
  reading.store(false);
  bomber.join();
  writer.join();
  ASSERT_EQ(sigaction(SIGALRM, &previous, nullptr), 0);

  // A signal that leaked through as a false close would truncate this.
  EXPECT_EQ(received, kTotal);
}

TEST(Tcp, FramesSurviveDribbledDelivery) {
  const std::string payload = "snapshot-vector-bytes";
  std::string wire;
  {
    // Build the on-the-wire image via a real socket round trip.
    LoopbackPair pair;
    pair.client.write_frame(payload);
    pair.client.write_frame("");  // empty frames are legal
    net::ReadResult r = pair.server.read_some();
    while (r.status == net::ReadStatus::kData) {
      wire += r.data;
      if (wire.size() >= 4 + payload.size() + 4) break;
      r = pair.server.read_some();
    }
  }
  ASSERT_EQ(wire.size(), 4 + payload.size() + 4);

  // One byte at a time: the reader must reassemble both frames exactly.
  net::FrameReader reader;
  std::vector<std::string> frames;
  std::string frame;
  for (const char byte : wire) {
    reader.feed(std::string_view(&byte, 1));
    while (reader.next(&frame) == net::FrameReader::Event::kFrame)
      frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], payload);
  EXPECT_EQ(frames[1], "");
}

TEST(Tcp, OversizedLengthPrefixIsSticky) {
  net::FrameReader reader(/*max_frame_bytes=*/1024);
  // Length prefix claims 1 MiB; the reader must refuse without buffering.
  const std::uint32_t huge = 1 << 20;
  std::string prefix;
  for (int i = 0; i < 4; ++i)
    prefix.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  reader.feed(prefix);
  std::string frame;
  EXPECT_EQ(reader.next(&frame), net::FrameReader::Event::kOversized);
  // Framing is unrecoverable: even valid-looking bytes afterwards must keep
  // reporting kOversized so the owner drops the connection.
  reader.feed(std::string("\x01\x00\x00\x00x", 5));
  EXPECT_EQ(reader.next(&frame), net::FrameReader::Event::kOversized);
}

// The explicit-address constructors behind the coord layer's allow_nonlocal
// flag: numeric IPv4 only, no DNS, and loopback addresses keep working
// through them (the loopback constructors delegate here).
TEST(Tcp, ExplicitAddressConnectAndListen) {
  const net::Socket listener = net::Socket::listen_on("127.0.0.1", 0);
  const net::Socket client =
      net::Socket::connect_to("127.0.0.1", listener.local_port());
  const net::Socket server = listener.accept();
  client.write_all("hello");
  const net::ReadResult got = server.read_some();
  ASSERT_EQ(got.status, net::ReadStatus::kData);
  EXPECT_EQ(got.data, "hello");

  // Hostnames are configuration errors, not resolution requests.
  try {
    net::Socket::connect_to("control-plane.internal", 7000);
    FAIL() << "hostname accepted by the numeric-IPv4-only connect";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("numeric IPv4"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(net::Socket::listen_on("not-an-address", 0),
               ContractViolation);
  EXPECT_THROW(net::Socket::connect_to("", 7000), ContractViolation);
}

TEST(Tcp, TryAcceptReportsTimeoutAsInvalidSocket) {
  const net::Socket listener = net::Socket::listen_on_loopback(0);
  listener.set_read_timeout_ms(30);
  EXPECT_FALSE(listener.try_accept().valid());  // nobody dialed: timeout

  const net::Socket client =
      net::Socket::connect_loopback(listener.local_port());
  net::Socket accepted = listener.try_accept();
  EXPECT_TRUE(accepted.valid());
}

TEST(Tcp, ShutdownWakesABlockedReader) {
  LoopbackPair pair;
  std::atomic<bool> woke{false};
  std::thread reader([&] {
    // Blocks until shutdown() below; must observe kClosed, not hang.
    const net::ReadResult result = pair.client.read_some();
    woke.store(result.status == net::ReadStatus::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pair.client.shutdown();
  reader.join();
  EXPECT_TRUE(woke.load());
}

}  // namespace
}  // namespace sharegrid
