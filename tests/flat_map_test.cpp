// Tests for the flat containers (util/flat_map.hpp): sorted-vector FlatMap
// semantics, FlatHashMap open-addressing behaviour (growth, probe chains,
// backward-shift deletion), and a randomized differential check against the
// standard containers.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace sharegrid {
namespace {

TEST(FlatMap, InsertFindEraseOrdered) {
  util::FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());

  m.insert_or_assign(3, "c");
  m.insert_or_assign(1, "a");
  m.insert_or_assign(2, "b");
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(2), m.end());
  EXPECT_EQ(m.find(2)->second, "b");
  EXPECT_TRUE(m.contains(3));
  EXPECT_FALSE(m.contains(4));

  // Iteration is sorted by key regardless of insertion order.
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));

  // insert_or_assign on an existing key overwrites without growing.
  const auto [it, inserted] = m.insert_or_assign(2, "B");
  EXPECT_FALSE(inserted);
  EXPECT_EQ(it->second, "B");
  EXPECT_EQ(m.size(), 3u);

  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(2), m.end());
}

TEST(FlatMap, SubscriptDefaultConstructsAndLowerBound) {
  util::FlatMap<int, int> m;
  m[5] = 50;
  EXPECT_EQ(m[5], 50);
  EXPECT_EQ(m[7], 0);  // default-constructed
  EXPECT_EQ(m.size(), 2u);

  EXPECT_EQ(m.lower_bound(4)->first, 5);
  EXPECT_EQ(m.lower_bound(6)->first, 7);
  EXPECT_EQ(m.lower_bound(8), m.end());
}

TEST(FlatHashMap, InsertFindEraseBasics) {
  util::FlatHashMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(42), m.end());
  EXPECT_EQ(m.erase(42), 0u);  // erase on an empty (unallocated) table

  m.insert_or_assign(42, 1);
  m[43] = 2;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_TRUE(m.contains(42));
  EXPECT_EQ(m.find(42)->second, 1);
  EXPECT_EQ(m[43], 2);

  const auto [it, inserted] = m.insert_or_assign(42, 10);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(it->second, 10);

  EXPECT_EQ(m.erase(42), 1u);
  EXPECT_EQ(m.erase(42), 0u);
  EXPECT_FALSE(m.contains(42));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, GrowsPastInitialCapacityAndKeepsEntries) {
  util::FlatHashMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t i = 0; i < kN; ++i) m[i] = i * 3;
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(m.contains(i)) << i;
    EXPECT_EQ(m.find(i)->second, i * 3);
  }
  // Load factor never exceeds 7/8.
  EXPECT_GE(m.capacity() * 7, m.size() * 8);
}

TEST(FlatHashMap, ReserveAvoidsRehash) {
  util::FlatHashMap<std::uint64_t, int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t i = 0; i < 1000; ++i) m[i] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatHashMap, IterationVisitsEveryEntryOnce) {
  util::FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 100; ++i) m[i] = 1;
  std::size_t count = 0;
  std::uint64_t key_sum = 0;
  for (const auto& [k, v] : m) {
    ++count;
    key_sum += k;
    EXPECT_EQ(v, 1);
  }
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(key_sum, 99u * 100u / 2);

  // Const iterators convert from mutable ones (audit templates mix them).
  const auto& cm = m;
  util::FlatHashMap<std::uint64_t, int>::const_iterator cit = m.begin();
  EXPECT_EQ(cit, cm.begin());
}

/// Forces every key into the same home bucket so erase must exercise the
/// backward-shift path across long probe chains.
struct CollidingHash {
  std::size_t operator()(std::uint64_t) const { return 0; }
};

TEST(FlatHashMap, BackwardShiftEraseUnderFullCollision) {
  util::FlatHashMap<std::uint64_t, std::uint64_t, CollidingHash> m;
  for (std::uint64_t i = 0; i < 12; ++i) m[i] = i;
  // Erase from the middle of the probe chain, then the head, then verify the
  // survivors are all still reachable (no tombstone, no broken chain).
  EXPECT_EQ(m.erase(5), 1u);
  EXPECT_EQ(m.erase(0), 1u);
  EXPECT_EQ(m.erase(11), 1u);
  EXPECT_EQ(m.size(), 9u);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const bool gone = (i == 5 || i == 0 || i == 11);
    EXPECT_EQ(m.contains(i), !gone) << i;
    if (!gone) {
      EXPECT_EQ(m.find(i)->second, i);
    }
  }
}

TEST(FlatHashMap, RandomizedDifferentialAgainstStdMap) {
  // Mixed insert/overwrite/erase/lookup churn over a small key space keeps
  // probe chains and backward shifts busy; the std::map mirror is the oracle.
  util::FlatHashMap<std::uint64_t, std::uint64_t> flat;
  std::map<std::uint64_t, std::uint64_t> mirror;
  Rng rng(1234);
  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t key = rng() % 512;
    const std::uint64_t op = rng() % 4;
    if (op < 2) {
      const std::uint64_t value = rng();
      flat[key] = value;
      mirror[key] = value;
    } else if (op == 2) {
      EXPECT_EQ(flat.erase(key), mirror.erase(key));
    } else {
      const auto it = mirror.find(key);
      if (it == mirror.end()) {
        EXPECT_FALSE(flat.contains(key));
      } else {
        ASSERT_TRUE(flat.contains(key));
        EXPECT_EQ(flat.find(key)->second, it->second);
      }
    }
    ASSERT_EQ(flat.size(), mirror.size());
  }
  // Final sweep: identical contents.
  std::map<std::uint64_t, std::uint64_t> drained;
  for (const auto& [k, v] : flat) {
    EXPECT_TRUE(drained.emplace(k, v).second);  // each entry visited once
  }
  EXPECT_EQ(drained, mirror);
}

TEST(FlatHashMap, ClearReleasesEntries) {
  util::FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 64; ++i) m[i] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(3), m.end());
  m[3] = 7;  // usable after clear
  EXPECT_EQ(m.find(3)->second, 7);
}

TEST(FlatHash, Mix64AndCombineSpread) {
  // Not a statistical test — just pin that sequential keys do not collapse
  // onto a few buckets for the table sizes we use.
  std::unordered_map<std::uint64_t, int> buckets;
  for (std::uint64_t i = 0; i < 1024; ++i)
    buckets[util::mix64(i) & 1023]++;
  EXPECT_GT(buckets.size(), 512u);
  EXPECT_NE(util::hash_combine(1, 2), util::hash_combine(2, 1));
}

}  // namespace
}  // namespace sharegrid
