// Warm-started LP pipeline: equivalence with cold solves, fallback paths,
// and the iteration-limit degradation in the schedulers.
#include "lp/solve_context.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/income_scheduler.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/window_scheduler.hpp"
#include "util/rng.hpp"

namespace sharegrid::lp {
namespace {

/// Warm and cold solves of the same problem must agree on status and (for
/// optimal solves) on the objective within 1e-9 relative; vertices may
/// legitimately differ under alternate optima, so values are checked only
/// through primal feasibility (the always-compiled auditor).
void expect_equivalent(const Problem& problem, const Solution& warm,
                       const Solution& cold) {
  ASSERT_EQ(static_cast<int>(warm.status), static_cast<int>(cold.status));
  if (!cold.optimal()) return;
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-9 * (1.0 + std::abs(cold.objective)));
  ASSERT_NO_THROW(audit::audit_lp_solution(problem, warm, 1e-6));
  ASSERT_NO_THROW(audit::audit_lp_solution(problem, cold, 1e-6));
}

/// A scheduler-shaped LP family with a fixed layout and per-window data:
/// per-variable upper bounds, one shared capacity row, a mandatory floor
/// (>=, exercising artificials), and a theta-style row whose coefficient on
/// the last variable carries the demand (a *structural* change between
/// windows, exercising the warm repair pivots).
Problem make_window_problem(std::size_t n, double capacity, double floor,
                            const std::vector<double>& hi, double theta_demand,
                            const std::vector<double>& prices) {
  Problem p(n + 1, Sense::kMaximize);
  for (std::size_t j = 0; j < n; ++j) {
    p.set_objective(j, prices[j]);
    p.set_bounds(j, 0.0, hi[j]);
  }
  p.set_bounds(n, 0.0, 1.0);
  p.set_objective(n, capacity);  // reward theta like the max-min stage

  std::vector<std::pair<std::size_t, double>> cap_terms;
  for (std::size_t j = 0; j < n; ++j) cap_terms.emplace_back(j, 1.0);
  p.add_constraint(std::move(cap_terms), Relation::kLessEq, capacity);

  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEq, floor);

  std::vector<std::pair<std::size_t, double>> theta_terms;
  for (std::size_t j = 0; j < n; ++j) theta_terms.emplace_back(j, 1.0);
  theta_terms.emplace_back(n, -theta_demand);
  p.add_constraint(std::move(theta_terms), Relation::kGreaterEq, 0.0);
  return p;
}

TEST(SolveContext, WarmMatchesColdOverPerturbedWindows) {
  // Scheduler-realistic drift: right-hand sides, bounds, and the theta
  // column move every window; the objective (structural in every scheduler
  // stage) is re-rolled only occasionally, which may legitimately force a
  // cold solve when the cached basis also lost primal feasibility.
  constexpr std::size_t kVars = 8;
  constexpr int kWindows = 220;
  Rng rng(20240811);
  SolveContext context;

  std::vector<double> hi(kVars, 0.0);
  std::vector<double> prices(kVars, 1.0);
  int warm_checked = 0;
  for (int w = 0; w < kWindows; ++w) {
    const double capacity = rng.uniform(50.0, 150.0);
    const double floor = rng.uniform(0.0, 20.0);
    for (double& h : hi) h = rng.uniform(0.0, 40.0);
    const double theta_demand = rng.uniform(10.0, 400.0);
    if (w % 10 == 0)
      for (double& p : prices) p = rng.uniform(0.0, 5.0);

    const Problem p = make_window_problem(kVars, capacity, floor, hi,
                                          theta_demand, prices);
    const Solution warm = context.solve(p);
    const Solution cold = solve(p);  // fresh context: cold by construction
    expect_equivalent(p, warm, cold);
    if (warm.warm_started) ++warm_checked;
  }

  const SolveStats& stats = context.stats();
  EXPECT_EQ(stats.solves, static_cast<std::uint64_t>(kWindows));
  EXPECT_EQ(stats.warm_solves + stats.cold_solves, stats.solves);
  // The point of the pipeline: most perturbed windows re-enter phase 2.
  EXPECT_GT(warm_checked, kWindows / 2);
  EXPECT_GT(stats.warm_solves, 0u);
}

TEST(SolveContext, RhsOnlyPerturbationsStayWarm) {
  // Pure right-hand-side drift (capacity/bounds) with frozen structure: the
  // cached basis should survive nearly every window.
  constexpr std::size_t kVars = 6;
  Rng rng(7);
  SolveContext context;
  std::vector<double> hi(kVars, 30.0);
  std::vector<double> prices(kVars, 1.0);
  for (int w = 0; w < 50; ++w) {
    const double capacity = 100.0 + rng.uniform(-5.0, 5.0);
    for (double& h : hi) h = 30.0 + rng.uniform(-1.0, 1.0);
    const Problem p =
        make_window_problem(kVars, capacity, 10.0, hi, 200.0, prices);
    const Solution warm = context.solve(p);
    const Solution cold = solve(p);
    expect_equivalent(p, warm, cold);
  }
  EXPECT_GT(context.stats().warm_solves, 40u);
}

TEST(SolveContext, InfeasibleRhsRecoveredByDualSimplex) {
  // Window 2's capacity collapses below what the cached basis allocated:
  // primal infeasible for the new rhs. The objective is unchanged, so the
  // basis is still dual feasible and dual simplex must recover the warm
  // start instead of falling back to phase 1.
  constexpr std::size_t kVars = 4;
  std::vector<double> hi(kVars, 50.0);
  std::vector<double> prices(kVars, 1.0);
  SolveContext context;

  const Problem loose =
      make_window_problem(kVars, 120.0, 10.0, hi, 100.0, prices);
  const Solution first = context.solve(loose);
  ASSERT_TRUE(first.optimal());
  ASSERT_FALSE(first.warm_started);

  const Problem tight = make_window_problem(kVars, 12.0, 10.0, hi, 100.0,
                                            prices);
  const Solution second = context.solve(tight);
  const Solution cold = solve(tight);
  expect_equivalent(tight, second, cold);
  EXPECT_TRUE(second.warm_started);
  EXPECT_GE(context.stats().dual_recoveries, 1u);
  EXPECT_EQ(context.stats().rhs_rejections, 0u);
}

TEST(SolveContext, InfeasibleRhsWithMovedObjectiveFallsBackToPhase1) {
  // When the right-hand side breaks primal feasibility AND the objective
  // moved (so the cached basis is not dual feasible either), no warm
  // re-entry is possible: the context must reject the warm start
  // (rhs_rejections) and produce the answer through the full two-phase
  // method — the forced phase-1 fallback case.
  auto make = [](double x0_cap, double price1) {
    Problem p(2, Sense::kMaximize);
    p.set_objective(0, 1.0);
    p.set_objective(1, price1);
    p.set_bounds(0, 0.0, x0_cap);
    p.set_bounds(1, 0.0, 10.0);
    p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEq, 15.0);
    p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEq, 5.0);
    return p;
  };
  SolveContext context;
  const Problem first = make(10.0, 0.0);
  ASSERT_TRUE(context.solve(first).optimal());  // x0 = 10, x1 nonbasic at 0

  // x0's ceiling collapses to 2 (the floor row goes primal infeasible for
  // the old basis) and x1 — nonbasic — suddenly earns a positive reduced
  // cost: dual recovery must refuse and the solve must go cold.
  const Problem second = make(2.0, 2.0);
  const Solution warm = context.solve(second);
  const Solution cold = solve(second);
  expect_equivalent(second, warm, cold);
  EXPECT_FALSE(warm.warm_started);
  EXPECT_GE(context.stats().rhs_rejections, 1u);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, 2.0 + 2.0 * 10.0, 1e-6);
}

TEST(SolveContext, WarmRefreshIntervalForcesPeriodicColdSolves) {
  constexpr std::size_t kVars = 4;
  std::vector<double> hi(kVars, 25.0);
  std::vector<double> prices(kVars, 1.0);
  SolverOptions options;
  options.warm_refresh_interval = 4;
  SolveContext context;
  for (int w = 0; w < 20; ++w) {
    const Problem p = make_window_problem(
        kVars, 80.0 + static_cast<double>(w % 3), 5.0, hi, 150.0, prices);
    ASSERT_TRUE(context.solve(p, options).optimal());
  }
  EXPECT_GE(context.stats().refreshes, 3u);
  EXPECT_GE(context.stats().cold_solves, 4u);
}

TEST(SolveContext, ZeroRefreshIntervalDisablesWarmStarts) {
  constexpr std::size_t kVars = 4;
  std::vector<double> hi(kVars, 25.0);
  std::vector<double> prices(kVars, 1.0);
  SolverOptions options;
  options.warm_refresh_interval = 0;
  SolveContext context;
  for (int w = 0; w < 5; ++w) {
    const Problem p = make_window_problem(kVars, 80.0, 5.0, hi, 150.0, prices);
    ASSERT_TRUE(context.solve(p, options).optimal());
  }
  EXPECT_EQ(context.stats().warm_solves, 0u);
  EXPECT_EQ(context.stats().cold_solves, 5u);
}

TEST(SolveContext, InvalidateForcesColdSolve) {
  constexpr std::size_t kVars = 4;
  std::vector<double> hi(kVars, 25.0);
  std::vector<double> prices(kVars, 1.0);
  SolveContext context;
  const Problem p = make_window_problem(kVars, 80.0, 5.0, hi, 150.0, prices);
  ASSERT_TRUE(context.solve(p).optimal());
  ASSERT_TRUE(context.solve(p).warm_started);
  context.invalidate();
  const Solution after = context.solve(p);
  ASSERT_TRUE(after.optimal());
  EXPECT_FALSE(after.warm_started);
}

TEST(SolveContext, IterationLimitReportedGracefully) {
  // A pivot budget of zero cannot certify optimality; the solver must report
  // kIterationLimit instead of asserting (the old behaviour crashed).
  Problem p(2, Sense::kMaximize);
  p.set_objective(0, 3.0);
  p.set_objective(1, 5.0);
  p.add_constraint({{0, 1.0}, {1, 2.0}}, Relation::kLessEq, 10.0);
  SolverOptions options;
  options.max_iterations = 0;
  const Solution s = solve(p, options);
  EXPECT_EQ(static_cast<int>(s.status),
            static_cast<int>(Status::kIterationLimit));
}

TEST(SolveContext, StructureChangeGoesColdThenReWarms) {
  // Dropping the floor row changes the constraint pattern: the next solve
  // must be cold (structure miss), and the one after that warm again.
  constexpr std::size_t kVars = 4;
  std::vector<double> hi(kVars, 25.0);
  std::vector<double> prices(kVars, 1.0);
  SolveContext context;
  const Problem with_floor =
      make_window_problem(kVars, 80.0, 5.0, hi, 150.0, prices);
  ASSERT_TRUE(context.solve(with_floor).optimal());

  Problem no_floor(kVars, Sense::kMaximize);
  for (std::size_t j = 0; j < kVars; ++j) {
    no_floor.set_objective(j, 1.0);
    no_floor.set_bounds(j, 0.0, hi[j]);
  }
  std::vector<std::pair<std::size_t, double>> cap_terms;
  for (std::size_t j = 0; j < kVars; ++j) cap_terms.emplace_back(j, 1.0);
  no_floor.add_constraint(std::move(cap_terms), Relation::kLessEq, 80.0);
  const Solution cold_again = context.solve(no_floor);
  ASSERT_TRUE(cold_again.optimal());
  EXPECT_FALSE(cold_again.warm_started);
  EXPECT_GE(context.stats().structure_misses, 1u);

  const Solution rewarm = context.solve(no_floor);
  ASSERT_TRUE(rewarm.optimal());
  EXPECT_TRUE(rewarm.warm_started);
}

/// maximize 2*x0 + x1 over x0 in [0, h0], x1 in [0, h1], x0 + x1 <= cap.
/// With h0 + h1 < cap both variables sit nonbasic at their upper bounds at
/// the optimum — reached by bound flips, since the single constraint row
/// admits only one basic structural variable.
Problem make_box_problem(double h0, double h1, double cap) {
  Problem p(2, Sense::kMaximize);
  p.set_objective(0, 2.0);
  p.set_objective(1, 1.0);
  p.set_bounds(0, 0.0, h0);
  p.set_bounds(1, 0.0, h1);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEq, cap);
  return p;
}

TEST(SolveContext, BoundFlipSurvivesWarmReEntry) {
  SolveContext warm;
  const Problem first = make_box_problem(3.0, 4.0, 10.0);
  const Solution base = warm.solve(first);
  ASSERT_TRUE(base.optimal());
  EXPECT_NEAR(base.objective, 10.0, 1e-9);
  // The optimum parks both variables nonbasic-at-upper via flips.
  EXPECT_GT(warm.stats().bound_flips, 0u);

  // Drift the finite bound values between windows: that is data, not
  // layout, so every re-solve stays warm, and the flipped variables must
  // track their moving bounds through the recomputed basic values.
  for (const double d : {0.25, 0.5, 0.75, 1.0}) {
    const Problem next = make_box_problem(3.0 + d, 4.0 - d, 10.0);
    SolveContext cold;
    const Solution w = warm.solve(next);
    const Solution c = cold.solve(next);
    EXPECT_TRUE(w.warm_started);
    expect_equivalent(next, w, c);
  }
  EXPECT_EQ(warm.stats().warm_solves, 4u);
  EXPECT_EQ(warm.stats().structure_misses, 0u);
}

TEST(SolveContext, BoundCrossingInfinityIsAStructureMissBothWays) {
  // cap = 5 keeps the program bounded even when x1 loses its upper bound.
  auto with_hi = [](double h1) { return make_box_problem(3.0, h1, 5.0); };
  SolveContext context;
  ASSERT_TRUE(context.solve(with_hi(4.0)).optimal());

  // finite -> kInfinity: the set of flippable variables changed, so the
  // cached tableau must not be reused even though every coefficient and
  // right-hand side is identical.
  const Solution widened = context.solve(with_hi(kInfinity));
  ASSERT_TRUE(widened.optimal());
  EXPECT_NEAR(widened.objective, 2.0 * 3.0 + 2.0, 1e-9);
  EXPECT_FALSE(widened.warm_started);
  EXPECT_EQ(context.stats().structure_misses, 1u);

  // kInfinity -> finite: same in the other direction.
  const Solution narrowed = context.solve(with_hi(4.0));
  ASSERT_TRUE(narrowed.optimal());
  EXPECT_FALSE(narrowed.warm_started);
  EXPECT_EQ(context.stats().structure_misses, 2u);

  // finite -> finite is a data rewrite and must stay warm.
  const Solution drifted = context.solve(with_hi(3.5));
  ASSERT_TRUE(drifted.optimal());
  EXPECT_TRUE(drifted.warm_started);
  EXPECT_EQ(context.stats().structure_misses, 2u);
}

TEST(SolveContext, StatsStayConsistentAcrossMixedOutcomes) {
  // A workload that exercises warm solves, layout misses, periodic
  // refreshes, and an iteration-limited window, then cross-checks the
  // counters with the audit-layer consistency assertion (the same check the
  // solver runs after every solve in SHAREGRID_AUDIT builds).
  constexpr std::size_t kVars = 4;
  std::vector<double> prices = {1.0, 0.8, 1.2, 0.9};
  SolveContext context;
  SolverOptions opt;
  opt.warm_refresh_interval = 8;
  Rng rng(2026);
  for (int w = 0; w < 40; ++w) {
    std::vector<double> hi(kVars, 20.0 + rng.uniform(0.0, 10.0));
    if (w % 13 == 12) {
      // Different constraint pattern: forces a structure miss.
      Problem other(kVars, Sense::kMaximize);
      for (std::size_t j = 0; j < kVars; ++j) {
        other.set_objective(j, prices[j]);
        other.set_bounds(j, 0.0, hi[j]);
      }
      other.add_constraint({{0, 1.0}, {2, 1.0}}, Relation::kLessEq, 30.0);
      ASSERT_TRUE(context.solve(other, opt).optimal());
      continue;
    }
    const Problem p = make_window_problem(
        kVars, 70.0 + rng.uniform(0.0, 20.0), 4.0 + rng.uniform(0.0, 2.0), hi,
        120.0 + rng.uniform(0.0, 60.0), prices);
    if (w == 20) {
      SolverOptions strangled = opt;
      strangled.max_iterations = 0;
      context.solve(p, strangled);  // iteration-limited, still one solve
      continue;
    }
    ASSERT_TRUE(context.solve(p, opt).optimal());
  }
  const SolveStats& s = context.stats();
  EXPECT_NO_THROW(audit::audit_solve_stats(s));
  EXPECT_EQ(s.solves, 40u);
  EXPECT_EQ(s.warm_solves + s.cold_solves, s.solves);
  EXPECT_GE(s.warm_solves, 1u);
  EXPECT_GE(s.structure_misses, 1u);
  EXPECT_GE(s.refreshes, 1u);
}

}  // namespace
}  // namespace sharegrid::lp

namespace sharegrid::sched {
namespace {

/// Four principals with capacity and a ring of partial agreements: enough
/// cross-entitlement structure that the response-time LP is non-trivial.
core::AgreementGraph ring_graph() {
  core::AgreementGraph g;
  const auto a = g.add_principal("A", 120.0);
  const auto b = g.add_principal("B", 90.0);
  const auto c = g.add_principal("C", 60.0);
  const auto d = g.add_principal("D", 30.0);
  g.set_agreement(a, b, 0.2, 0.6);
  g.set_agreement(b, c, 0.3, 0.7);
  g.set_agreement(c, d, 0.1, 0.5);
  g.set_agreement(d, a, 0.2, 0.8);
  return g;
}

TEST(SchedulerWarmStart, ResponseTimePlansMatchColdSchedulers) {
  const auto g = ring_graph();
  const auto levels = core::compute_access_levels(g);
  ResponseTimeScheduler warm_sched(g, levels);

  Rng rng(99);
  for (int w = 0; w < 60; ++w) {
    std::vector<double> demand(4);
    for (double& d : demand) d = rng.uniform(0.0, 200.0);

    const Plan warm = warm_sched.plan(demand);
    // A fresh scheduler has fresh (cold) solver contexts.
    ResponseTimeScheduler cold_sched(g, levels);
    const Plan cold = cold_sched.plan(demand);

    ASSERT_FALSE(warm.lp_fallback);
    EXPECT_NEAR(warm.theta, cold.theta, 1e-9 * (1.0 + cold.theta));
    double warm_total = 0.0;
    double cold_total = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      warm_total += warm.admitted(i);
      cold_total += cold.admitted(i);
      // Feasibility: queue limits and capacities hold for the warm plan.
      EXPECT_LE(warm.admitted(i), demand[i] + 1e-6);
      EXPECT_LE(warm.server_load(i), g.capacity(i) + 1e-6);
    }
    EXPECT_NEAR(warm_total, cold_total, 1e-9 * (1.0 + cold_total));
  }
  EXPECT_GT(warm_sched.solver_stats().warm_solves, 0u);
}

/// Provider/customer star graph: the income scheduler allocates one
/// provider's servers among customers with SLA shares, so only the provider
/// carries capacity (a ring would make the mandatory floors infeasible).
core::AgreementGraph star_graph() {
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 300.0);
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  const auto c = g.add_principal("C", 0.0);
  g.set_agreement(s, a, 0.2, 0.6);
  g.set_agreement(s, b, 0.3, 0.7);
  g.set_agreement(s, c, 0.1, 0.5);
  return g;
}

TEST(SchedulerWarmStart, IncomePlansMatchColdSchedulers) {
  const auto g = star_graph();
  const auto levels = core::compute_access_levels(g);
  IncomeScheduler warm_sched(g, levels, 0, {0.0, 3.0, 2.0, 1.0});

  Rng rng(77);
  for (int w = 0; w < 60; ++w) {
    std::vector<double> demand(4);
    for (double& d : demand) d = rng.uniform(0.0, 150.0);

    const Plan warm = warm_sched.plan(demand);
    IncomeScheduler cold_sched(g, levels, 0, {0.0, 3.0, 2.0, 1.0});
    const Plan cold = cold_sched.plan(demand);

    ASSERT_FALSE(warm.lp_fallback);
    // Stage 2's income floor is built from stage 1's floating-point
    // objective, so warm/cold rounding differences compound across the two
    // chained solves; 1e-9 holds per-LP (see SolveContext tests) but not
    // end-to-end.
    const double warm_income = warm_sched.income(warm);
    const double cold_income = cold_sched.income(cold);
    EXPECT_NEAR(warm_income, cold_income, 1e-6 * (1.0 + cold_income));
  }
  EXPECT_GT(warm_sched.solver_stats().warm_solves, 0u);
}

TEST(SchedulerWarmStart, IterationLimitFallsBackToPreviousPlan) {
  const auto g = ring_graph();
  ResponseTimeScheduler sched(g, core::compute_access_levels(g));
  const std::vector<double> demand = {50.0, 40.0, 30.0, 20.0};

  const Plan good = sched.plan(demand);
  ASSERT_FALSE(good.lp_fallback);

  lp::SolverOptions strangled;
  strangled.max_iterations = 0;
  sched.set_solver_options(strangled);
  const std::vector<double> new_demand = {60.0, 10.0, 80.0, 5.0};
  const Plan stale = sched.plan(new_demand);
  EXPECT_TRUE(stale.lp_fallback);
  // The stale plan reuses the previous window's allocation against the
  // current demand estimate.
  EXPECT_EQ(stale.demand, new_demand);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_EQ(stale.rate(i, k), good.rate(i, k));

  // Recovery: restoring the budget produces fresh plans again.
  sched.set_solver_options(lp::SolverOptions{});
  EXPECT_FALSE(sched.plan(new_demand).lp_fallback);
}

TEST(SchedulerWarmStart, FallbackBeforeAnySuccessfulPlanIsEmpty) {
  const auto g = ring_graph();
  ResponseTimeScheduler sched(g, core::compute_access_levels(g));
  lp::SolverOptions strangled;
  strangled.max_iterations = 0;
  sched.set_solver_options(strangled);
  const Plan p = sched.plan({10.0, 10.0, 10.0, 10.0});
  EXPECT_TRUE(p.lp_fallback);
  EXPECT_EQ(p.theta, 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(p.admitted(i), 0.0);
}

TEST(SchedulerWarmStart, WindowSchedulerCountsPlanFallbacks) {
  const auto g = ring_graph();
  ResponseTimeScheduler sched(g, core::compute_access_levels(g));
  WindowScheduler window(&sched, 100 * kMillisecond, 1);

  GlobalDemand global;
  global.demand = {50.0, 40.0, 30.0, 20.0};
  global.valid = true;
  window.begin_window(global.demand, global);
  EXPECT_EQ(window.plan_fallbacks(), 0u);

  lp::SolverOptions strangled;
  strangled.max_iterations = 0;
  sched.set_solver_options(strangled);
  window.begin_window(global.demand, global);
  EXPECT_EQ(window.plan_fallbacks(), 1u);
  EXPECT_TRUE(window.last_plan().lp_fallback);
}

}  // namespace
}  // namespace sharegrid::sched
