// Unit tests for the per-redirector window driver: quota accounting, weight
// borrowing, demand estimation, and the conservative no-snapshot policy.
#include <gtest/gtest.h>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/window_scheduler.hpp"

namespace sharegrid::sched {
namespace {

/// Minimal deterministic scheduler: grants each principal a fixed rate on
/// its own server, capped by demand.
class FixedRateScheduler final : public Scheduler {
 public:
  explicit FixedRateScheduler(std::vector<double> rates)
      : rates_(std::move(rates)) {}

  Plan plan(const std::vector<double>& demand) const override {
    Plan p;
    p.demand = demand;
    p.rate = Matrix(rates_.size(), rates_.size(), 0.0);
    for (std::size_t i = 0; i < rates_.size(); ++i)
      p.rate(i, i) = std::min(rates_[i], demand[i]);
    return p;
  }
  std::size_t size() const override { return rates_.size(); }

 private:
  std::vector<double> rates_;
};

TEST(QuotaCarry, AccumulatesFractions) {
  QuotaCarry carry;
  std::uint64_t total = 0;
  for (int i = 0; i < 10; ++i) total += carry.take(0.3);
  EXPECT_EQ(total, 3u);  // 10 * 0.3 = 3.0
}

TEST(QuotaCarry, WholeAmountsPassThrough) {
  QuotaCarry carry;
  EXPECT_EQ(carry.take(5.0), 5u);
  EXPECT_EQ(carry.take(0.0), 0u);
}

TEST(QuotaCarry, LongRunRateIsExact) {
  QuotaCarry carry;
  std::uint64_t total = 0;
  for (int i = 0; i < 1000; ++i) total += carry.take(1.7);
  EXPECT_NEAR(static_cast<double>(total), 1700.0, 1.0);
}

TEST(ArrivalEstimator, FirstObservationPrimes) {
  ArrivalEstimator est(0.3);
  est.observe(20.0, 100 * kMillisecond);
  EXPECT_NEAR(est.rate(), 200.0, 1e-9);
}

TEST(ArrivalEstimator, ConvergesToSteadyRate) {
  ArrivalEstimator est(0.3);
  for (int i = 0; i < 100; ++i) est.observe(15.0, 100 * kMillisecond);
  EXPECT_NEAR(est.rate(), 150.0, 1e-6);
}

TEST(ArrivalEstimator, TracksRateChanges) {
  ArrivalEstimator est(0.5);
  for (int i = 0; i < 50; ++i) est.observe(10.0, 100 * kMillisecond);
  for (int i = 0; i < 50; ++i) est.observe(40.0, 100 * kMillisecond);
  EXPECT_NEAR(est.rate(), 400.0, 1.0);
}

TEST(WindowScheduler, GrantsPlanRateOverWindows) {
  FixedRateScheduler fixed({100.0, 50.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  GlobalDemand global{{100.0, 50.0}, true};

  std::uint64_t admitted = 0;
  for (int w = 0; w < 10; ++w) {
    ws.begin_window({100.0, 50.0}, global);
    while (ws.try_admit(0)) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted), 100.0, 2.0);  // 100/s for 1 s
}

TEST(WindowScheduler, AdmitReturnsOwningServer) {
  FixedRateScheduler fixed({100.0, 50.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  ws.begin_window({100.0, 50.0}, {{100.0, 50.0}, true});
  const auto server = ws.try_admit(1);
  ASSERT_TRUE(server.has_value());
  EXPECT_EQ(*server, 1u);  // FixedRateScheduler maps i -> server i
}

TEST(WindowScheduler, LargeWeightBorrowsFromFutureWindows) {
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  GlobalDemand global{{100.0}, true};

  ws.begin_window({100.0}, global);
  // Quota per window = 10 units. A weight-25 request is admitted (quota is
  // positive) and drives the balance negative...
  EXPECT_TRUE(ws.try_admit(0, 25.0).has_value());
  EXPECT_FALSE(ws.try_admit(0).has_value());
  // ...which the next windows repay before admitting anything else.
  ws.begin_window({100.0}, global);
  EXPECT_FALSE(ws.try_admit(0).has_value());  // still -5 after +10
  ws.begin_window({100.0}, global);
  EXPECT_TRUE(ws.try_admit(0).has_value());  // +5 now
}

TEST(WindowScheduler, UnusedQuotaDoesNotAccumulate) {
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  GlobalDemand global{{100.0}, true};

  // Five idle windows must not bank 50 requests of burst budget.
  for (int w = 0; w < 5; ++w) ws.begin_window({100.0}, global);
  std::uint64_t burst = 0;
  while (ws.try_admit(0)) ++burst;
  EXPECT_LE(burst, 11u);
}

TEST(WindowScheduler, ProportionalShareOfGlobalQueue) {
  // This redirector holds 25% of the global queue, so it may admit 25% of
  // the planned rate (the paper's x_local/n_local = x/n rule, §3.2).
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 2);
  GlobalDemand global{{100.0}, true};

  std::uint64_t admitted = 0;
  for (int w = 0; w < 10; ++w) {
    ws.begin_window({25.0}, global);
    while (ws.try_admit(0)) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted), 25.0, 2.0);
}

TEST(WindowScheduler, LocalDemandOverridesStaleSnapshot) {
  // The snapshot says nobody is queued anywhere, but locally we see 50/s;
  // the estimate must not hide demand the redirector can observe directly.
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 2);
  GlobalDemand stale{{0.0}, true};

  ws.begin_window({50.0}, stale);
  EXPECT_GT(ws.remaining_quota(0), 0.0);
}

TEST(WindowScheduler, ConservativeModeUsesMandatoryOverRedirectors) {
  // Without any snapshot, a real scheduler pins everyone to mandatory and
  // the driver takes a 1/R slice (Figure 8 phase 1: half of B's 64 = 32).
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 320.0);
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  g.set_agreement(s, a, 0.8, 1.0);
  g.set_agreement(s, b, 0.2, 1.0);
  const ResponseTimeScheduler rts(g, core::compute_access_levels(g));

  WindowScheduler ws(&rts, 100 * kMillisecond, 2);
  GlobalDemand none;  // valid = false

  std::uint64_t admitted_b = 0;
  for (int w = 0; w < 10; ++w) {
    ws.begin_window({0.0, 0.0, 135.0}, none);
    while (ws.try_admit(b)) ++admitted_b;
  }
  // Half of B's 64 req/s mandatory over one second = 32.
  EXPECT_NEAR(static_cast<double>(admitted_b), 32.0, 2.0);
  (void)a;
}

TEST(WindowScheduler, ReplanOpensQuotaOnDemandSpike) {
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  // The window was planned against zero demand: nothing is admitted.
  ws.begin_window({0.0}, {{0.0}, true});
  EXPECT_FALSE(ws.try_admit(0).has_value());
  // Mid-window the estimate jumps: replan grants the corresponding slice.
  ws.replan({100.0}, {{100.0}, true});
  EXPECT_TRUE(ws.try_admit(0).has_value());
}

TEST(WindowScheduler, ReplanCannotRegrantConsumedQuota) {
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  GlobalDemand global{{100.0}, true};
  ws.begin_window({100.0}, global);
  std::uint64_t admitted = 0;
  while (ws.try_admit(0)) ++admitted;
  EXPECT_EQ(admitted, 10u);
  // Replanning with the same demand must NOT refresh the spent quota.
  ws.replan({100.0}, global);
  EXPECT_FALSE(ws.try_admit(0).has_value());
  // Even many replans in a row stay dry.
  for (int i = 0; i < 5; ++i) ws.replan({100.0}, global);
  EXPECT_FALSE(ws.try_admit(0).has_value());
}

TEST(WindowScheduler, ReplanPreservesBorrowDebt) {
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  GlobalDemand global{{100.0}, true};
  ws.begin_window({100.0}, global);
  EXPECT_TRUE(ws.try_admit(0, 25.0).has_value());  // deep borrow
  ws.begin_window({100.0}, global);                // debt -15 + slice 10
  ws.replan({100.0}, global);
  EXPECT_FALSE(ws.try_admit(0).has_value());  // still repaying
}

TEST(WindowScheduler, RejectsMalformedInput) {
  FixedRateScheduler fixed({100.0});
  WindowScheduler ws(&fixed, 100 * kMillisecond, 1);
  EXPECT_THROW(ws.begin_window({1.0, 2.0}, {}), ContractViolation);
  ws.begin_window({100.0}, {{100.0}, true});
  EXPECT_THROW(ws.try_admit(5), ContractViolation);
  EXPECT_THROW(ws.try_admit(0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace sharegrid::sched
