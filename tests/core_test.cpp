// Unit tests for the agreement graph, ticket ledger, and flow analysis.
// The central fixture is the paper's Figure 3 worked example, whose final
// currency values the paper states explicitly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "core/ticket.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sharegrid::core {
namespace {

/// Figure 3: A owns 1000 u/s, B owns 1500 u/s, C owns nothing;
/// A->B [0.4, 0.6], B->C [0.6, 1.0].
AgreementGraph figure3_graph() {
  AgreementGraph g;
  const auto a = g.add_principal("A", 1000.0);
  const auto b = g.add_principal("B", 1500.0);
  g.add_principal("C", 0.0);
  g.set_agreement(a, b, 0.4, 0.6);
  g.set_agreement(b, g.find("C"), 0.6, 1.0);
  return g;
}

TEST(AgreementGraph, StoresPrincipalsAndAgreements) {
  AgreementGraph g = figure3_graph();
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.name(0), "A");
  EXPECT_DOUBLE_EQ(g.capacity(1), 1500.0);
  EXPECT_DOUBLE_EQ(g.lower_bound(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(g.upper_bound(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.lower_bound(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.total_capacity(), 2500.0);
  EXPECT_EQ(g.agreements().size(), 2u);
}

TEST(AgreementGraph, FindByName) {
  AgreementGraph g = figure3_graph();
  EXPECT_EQ(g.find("B"), 1u);
  EXPECT_EQ(g.find("nobody"), kNoPrincipal);
}

TEST(AgreementGraph, RejectsInvalidAgreements) {
  AgreementGraph g;
  const auto a = g.add_principal("A", 100.0);
  const auto b = g.add_principal("B", 100.0);
  EXPECT_THROW(g.set_agreement(a, a, 0.1, 0.2), ContractViolation);
  EXPECT_THROW(g.set_agreement(a, b, 0.5, 0.4), ContractViolation);
  EXPECT_THROW(g.set_agreement(a, b, -0.1, 0.4), ContractViolation);
  EXPECT_THROW(g.set_agreement(a, b, 0.4, 1.1), ContractViolation);
}

TEST(AgreementGraph, RejectsOverIssuedLowerBounds) {
  AgreementGraph g;
  const auto a = g.add_principal("A", 100.0);
  const auto b = g.add_principal("B", 100.0);
  const auto c = g.add_principal("C", 100.0);
  g.set_agreement(a, b, 0.7, 0.8);
  EXPECT_THROW(g.set_agreement(a, c, 0.4, 0.5), ContractViolation);
  g.set_agreement(a, c, 0.3, 0.5);  // exactly 1.0 total is allowed
}

TEST(AgreementGraph, ReplacingAnAgreementReleasesItsLowerBound) {
  AgreementGraph g;
  const auto a = g.add_principal("A", 100.0);
  const auto b = g.add_principal("B", 100.0);
  g.set_agreement(a, b, 0.9, 1.0);
  g.set_agreement(a, b, 0.2, 0.3);  // replace, not accumulate
  EXPECT_DOUBLE_EQ(g.issued_lower_bound(a), 0.2);
}

TEST(AgreementGraph, RejectsDuplicateNames) {
  AgreementGraph g;
  g.add_principal("A", 1.0);
  EXPECT_THROW(g.add_principal("A", 2.0), ContractViolation);
}

// --- Flow analysis: the paper's Figure 3 numbers -------------------------

TEST(FlowAnalysis, Figure3CurrencyValues) {
  const AgreementGraph g = figure3_graph();
  const AccessLevels levels = compute_access_levels(g);

  // Mandatory currency values before outflow: A 1000, B 1900, C 1140.
  EXPECT_NEAR(levels.mandatory_value[0], 1000.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_value[1], 1900.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_value[2], 1140.0, 1e-9);

  // Final (mandatory, optional) values: A (600,400), B (760,1340),
  // C (1140,960) — stated verbatim in §2.3.
  EXPECT_NEAR(levels.mandatory_capacity[0], 600.0, 1e-9);
  EXPECT_NEAR(levels.optional_capacity[0], 400.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_capacity[1], 760.0, 1e-9);
  EXPECT_NEAR(levels.optional_capacity[1], 1340.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_capacity[2], 1140.0, 1e-9);
  EXPECT_NEAR(levels.optional_capacity[2], 960.0, 1e-9);
}

TEST(FlowAnalysis, Figure3RawFlows) {
  const AgreementGraph g = figure3_graph();
  const AccessLevels levels = compute_access_levels(g);

  // MI(A,B) = 1000 * 0.4; MI(A,C) = 1000 * 0.4 * 0.6 (two-ticket path).
  EXPECT_NEAR(levels.mandatory_flow(0, 1, g), 400.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_flow(0, 2, g), 240.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_flow(1, 2, g), 900.0, 1e-9);
  // O-Ticket2's real value: A passes 200 optional units to B.
  EXPECT_NEAR(levels.optional_flow(0, 1, g), 200.0, 1e-9);
  // OI(A,C): switch at hop1 (0.2 * 1.0) or hop2 (0.4 * 0.4) => 0.36.
  EXPECT_NEAR(levels.optional_flow(0, 2, g), 360.0, 1e-9);
}

TEST(FlowAnalysis, EntitlementsPartitionEachServer) {
  const AgreementGraph g = figure3_graph();
  const AccessLevels levels = compute_access_levels(g);

  for (PrincipalId k = 0; k < g.size(); ++k) {
    double column = 0.0;
    for (PrincipalId i = 0; i < g.size(); ++i)
      column += levels.mandatory_entitlement(i, k);
    EXPECT_NEAR(column, g.capacity(k), 1e-9) << "server " << g.name(k);
  }
  // Row sums recover the per-principal access levels.
  for (PrincipalId i = 0; i < g.size(); ++i) {
    double em = 0.0;
    double eo = 0.0;
    for (PrincipalId k = 0; k < g.size(); ++k) {
      em += levels.mandatory_entitlement(i, k);
      eo += levels.optional_entitlement(i, k);
    }
    EXPECT_NEAR(em, levels.mandatory_capacity[i], 1e-9);
    EXPECT_NEAR(eo, levels.optional_capacity[i], 1e-9);
  }
}

TEST(FlowAnalysis, NoAgreementsMeansIsolation) {
  AgreementGraph g;
  g.add_principal("A", 100.0);
  g.add_principal("B", 50.0);
  const AccessLevels levels = compute_access_levels(g);
  EXPECT_NEAR(levels.mandatory_capacity[0], 100.0, 1e-12);
  EXPECT_NEAR(levels.mandatory_capacity[1], 50.0, 1e-12);
  EXPECT_NEAR(levels.optional_capacity[0], 0.0, 1e-12);
  EXPECT_NEAR(levels.mandatory_transfer(0, 1), 0.0, 1e-12);
}

TEST(FlowAnalysis, CyclicAgreementsUseSimplePaths) {
  // A <-> B mutual [0.5, 0.5]: paths may not revisit nodes, so A's inflow
  // from B is exactly 0.5 * V_B (no infinite ping-pong).
  AgreementGraph g;
  const auto a = g.add_principal("A", 100.0);
  const auto b = g.add_principal("B", 200.0);
  g.set_agreement(a, b, 0.5, 0.5);
  g.set_agreement(b, a, 0.5, 0.5);
  const AccessLevels levels = compute_access_levels(g);

  EXPECT_NEAR(levels.mandatory_flow(1, 0, g), 100.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_flow(0, 1, g), 50.0, 1e-9);
  // M_A = 100 + 100 = 200, MC_A = 200 * 0.5 = 100.
  // M_B = 200 + 50 = 250, MC_B = 250 * 0.5 = 125.
  EXPECT_NEAR(levels.mandatory_capacity[0], 100.0, 1e-9);
  EXPECT_NEAR(levels.mandatory_capacity[1], 125.0, 1e-9);
}

TEST(FlowAnalysis, MaxPathLengthTruncatesTransitiveChains) {
  // A -> B -> C chain; with max_path_length = 1 C sees nothing from A.
  AgreementGraph g = figure3_graph();
  FlowOptions opt;
  opt.max_path_length = 1;
  const AccessLevels levels = compute_access_levels(g, opt);
  EXPECT_NEAR(levels.mandatory_transfer(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(levels.mandatory_transfer(0, 1), 0.4, 1e-12);
}

TEST(FlowAnalysis, TransitiveChainsIncreaseAvailability) {
  // The paper's motivation for transitive flows: C gains resources from A
  // purely through B.
  AgreementGraph g = figure3_graph();
  FlowOptions truncated;
  truncated.max_path_length = 1;
  const AccessLevels direct = compute_access_levels(g, truncated);
  const AccessLevels full = compute_access_levels(g);
  EXPECT_GT(full.mandatory_capacity[2], direct.mandatory_capacity[2]);
}

TEST(FlowAnalysis, CapacityChangeFlowsThroughAgreements) {
  // §2.2: agreements are interpreted dynamically — doubling A's capacity
  // doubles what flows to B and C through existing agreements.
  AgreementGraph g = figure3_graph();
  const AccessLevels before = compute_access_levels(g);
  const double flow_before = before.mandatory_flow(0, 1, g);
  g.set_capacity(0, 2000.0);
  const AccessLevels after = compute_access_levels(g);
  EXPECT_NEAR(after.mandatory_flow(0, 1, g), 2.0 * flow_before, 1e-9);
  EXPECT_GT(after.mandatory_capacity[2], before.mandatory_capacity[2]);
}

// --- Tickets & currencies -------------------------------------------------

TEST(TicketLedger, RoundTripsWithAgreementGraph) {
  const AgreementGraph g = figure3_graph();
  const TicketLedger ledger = TicketLedger::from_agreements(g);

  // A->B [0.4,0.6] becomes M-Ticket (face 40) + O-Ticket (face 20) against
  // a face-100 currency — Figure 3's literal ticket faces.
  ASSERT_EQ(ledger.tickets().size(), 4u);
  EXPECT_DOUBLE_EQ(ledger.tickets()[0].face_value, 40.0);
  EXPECT_EQ(ledger.tickets()[0].kind, TicketKind::kMandatory);
  EXPECT_DOUBLE_EQ(ledger.tickets()[1].face_value, 20.0);
  EXPECT_EQ(ledger.tickets()[1].kind, TicketKind::kOptional);

  std::vector<Principal> principals{{"A", 1000.0}, {"B", 1500.0}, {"C", 0.0}};
  const AgreementGraph back = ledger.to_agreements(principals);
  for (PrincipalId i = 0; i < g.size(); ++i) {
    for (PrincipalId j = 0; j < g.size(); ++j) {
      EXPECT_NEAR(back.lower_bound(i, j), g.lower_bound(i, j), 1e-12);
      EXPECT_NEAR(back.upper_bound(i, j), g.upper_bound(i, j), 1e-12);
    }
  }
}

TEST(TicketLedger, CurrencyInflationRescalesAgreements) {
  // Doubling the face value of A's currency halves the fraction each
  // outstanding ticket conveys (§2.3's inflation lever).
  const AgreementGraph g = figure3_graph();
  TicketLedger ledger = TicketLedger::from_agreements(g);
  ledger.reissue_currency(0, 200.0);

  std::vector<Principal> principals{{"A", 1000.0}, {"B", 1500.0}, {"C", 0.0}};
  const AgreementGraph back = ledger.to_agreements(principals);
  EXPECT_NEAR(back.lower_bound(0, 1), 0.2, 1e-12);
  EXPECT_NEAR(back.upper_bound(0, 1), 0.3, 1e-12);
  // B's agreements are untouched.
  EXPECT_NEAR(back.lower_bound(1, 2), 0.6, 1e-12);
}

TEST(TicketLedger, RejectsOverIssuedMandatoryTickets) {
  TicketLedger ledger;
  ledger.set_currency(0, 100.0);
  ledger.issue(TicketKind::kMandatory, 0, 1, 70.0);
  EXPECT_THROW(ledger.issue(TicketKind::kMandatory, 0, 2, 40.0),
               ContractViolation);
  // Optional tickets are not limited by the mandatory budget.
  ledger.issue(TicketKind::kOptional, 0, 2, 40.0);
}

TEST(TicketLedger, FractionUsesIssuerFaceValue) {
  TicketLedger ledger;
  ledger.set_currency(0, 400.0);
  ledger.issue(TicketKind::kMandatory, 0, 1, 100.0);
  EXPECT_DOUBLE_EQ(ledger.fraction(ledger.tickets()[0]), 0.25);
}

// --- Property sweep over random acyclic graphs ---------------------------

class FlowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowPropertyTest, ConservationAndBounds) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.bounded(5);  // 2..6 principals
  AgreementGraph g;
  for (std::size_t i = 0; i < n; ++i)
    g.add_principal("P" + std::to_string(i), rng.uniform(10.0, 1000.0));
  // Random DAG: edges only i -> j with i < j, respecting the lb budget.
  for (PrincipalId i = 0; i < n; ++i) {
    double budget = 1.0;
    for (PrincipalId j = i + 1; j < n; ++j) {
      if (!rng.chance(0.5)) continue;
      const double lb = rng.uniform(0.0, budget * 0.8);
      const double ub = rng.uniform(lb, 1.0);
      if (ub <= 0.0) continue;
      g.set_agreement(i, j, lb, ub);
      budget -= lb;
    }
  }

  const AccessLevels levels = compute_access_levels(g);

  // Mandatory capacity is conserved: sum MC_i == total physical capacity.
  double mc_total = 0.0;
  for (PrincipalId i = 0; i < n; ++i) mc_total += levels.mandatory_capacity[i];
  EXPECT_NEAR(mc_total, g.total_capacity(), 1e-6);

  // Every entitlement column partitions its server.
  for (PrincipalId k = 0; k < n; ++k) {
    double col = 0.0;
    for (PrincipalId i = 0; i < n; ++i)
      col += levels.mandatory_entitlement(i, k);
    EXPECT_NEAR(col, g.capacity(k), 1e-6);
  }

  // Nothing is negative, and transfers never exceed 1.
  for (PrincipalId i = 0; i < n; ++i) {
    EXPECT_GE(levels.mandatory_capacity[i], -1e-9);
    EXPECT_GE(levels.optional_capacity[i], -1e-9);
    for (PrincipalId j = 0; j < n; ++j) {
      EXPECT_GE(levels.mandatory_transfer(i, j), -1e-12);
      EXPECT_LE(levels.mandatory_transfer(i, j), 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace sharegrid::core
