// Unit tests for the util substrate: rng, matrix, stats, time series, table.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/assert.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
#include "util/time_series.hpp"

namespace sharegrid {
namespace {

// The contract macros must produce messages a developer can act on without
// a debugger: the kind of contract, the exact failed expression, and the
// file:line of the call site.
TEST(Contracts, ExpectsMessageHasKindExpressionFileAndLine) {
  const int line = __LINE__ + 2;  // the SHAREGRID_EXPECTS line below
  try {
    SHAREGRID_EXPECTS(1 + 1 == 3);
    FAIL() << "SHAREGRID_EXPECTS(false) must throw";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("precondition"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1 + 1 == 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("util_test.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find(":" + std::to_string(line)), std::string::npos) << msg;
  }
}

TEST(Contracts, EnsuresMessageSaysPostcondition) {
  try {
    SHAREGRID_ENSURES(false && "result in range");
    FAIL() << "SHAREGRID_ENSURES(false) must throw";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("postcondition"), std::string::npos) << msg;
    EXPECT_NE(msg.find("false && \"result in range\""), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("util_test.cpp"), std::string::npos) << msg;
  }
}

TEST(Contracts, AssertMessageSaysInvariant) {
  try {
    SHAREGRID_ASSERT(2 < 1);
    FAIL() << "SHAREGRID_ASSERT(false) must throw";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("invariant"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 < 1"), std::string::npos) << msg;
  }
}

TEST(Contracts, PassingContractsDoNotThrowOrEvaluateTwice) {
  int evaluations = 0;
  const auto bump = [&] {
    ++evaluations;
    return true;
  };
  EXPECT_NO_THROW(SHAREGRID_EXPECTS(bump()));
  EXPECT_NO_THROW(SHAREGRID_ENSURES(bump()));
  EXPECT_NO_THROW(SHAREGRID_ASSERT(bump()));
  EXPECT_EQ(evaluations, 3);
}

TEST(Contracts, ViolationIsALogicError) {
  // Catch sites that filter on std::logic_error must see contract failures.
  EXPECT_THROW(SHAREGRID_EXPECTS(false), std::logic_error);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BoundedCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.bounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / trials, 3.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.bounded_pareto(200.0, 512000.0, 1.2);
    EXPECT_GE(v, 200.0 - 1e-9);
    EXPECT_LE(v, 512000.0 + 1e-6);
  }
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(17);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child1(), child2());
}

TEST(Matrix, BasicAccessAndSums) {
  Matrix m(2, 3, 1.0);
  m(1, 2) = 4.0;
  EXPECT_DOUBLE_EQ(m.row_sum(1), 6.0);
  EXPECT_DOUBLE_EQ(m.col_sum(2), 5.0);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m(0, 3), ContractViolation);
}

TEST(Matrix, EqualityAndEmpty) {
  Matrix a(2, 2, 0.5);
  Matrix b(2, 2, 0.5);
  EXPECT_EQ(a, b);
  b(0, 0) = 0.6;
  EXPECT_NE(a, b);
  EXPECT_TRUE(Matrix().empty());
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_THROW(percentile({}, 0.5), ContractViolation);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1.5), 1500000);
  EXPECT_EQ(milliseconds(100.0), 100000);
  EXPECT_DOUBLE_EQ(to_seconds(2500000), 2.5);
}

TEST(RateSeries, BinsAndRates) {
  RateSeries s(kSecond);
  s.record(0, 5);
  s.record(seconds(0.9), 5);
  s.record(seconds(1.5), 20);
  EXPECT_EQ(s.events_in_bin(0), 10u);
  EXPECT_EQ(s.events_in_bin(1), 20u);
  EXPECT_DOUBLE_EQ(s.rate_in_bin(0), 10.0);
  EXPECT_EQ(s.events_in_bin(7), 0u);
  EXPECT_EQ(s.total_events(), 30u);
}

TEST(RateSeries, AverageRateOverWindow) {
  RateSeries s(kSecond);
  for (int t = 0; t < 10; ++t) s.record(seconds(t + 0.5), 50);
  EXPECT_NEAR(s.average_rate(0, seconds(10)), 50.0, 1e-9);
  EXPECT_NEAR(s.average_rate(seconds(2), seconds(8)), 50.0, 1e-9);
}

TEST(RateSeries, PartialBinAttribution) {
  RateSeries s(kSecond);
  s.record(seconds(0.5), 100);  // all of it in bin 0
  // Asking for [0, 0.5) sees half of bin 0's events (uniform attribution).
  EXPECT_EQ(s.events_between(0, seconds(0.5)), 50u);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), ContractViolation);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(42.0, 0), "42");
}

}  // namespace
}  // namespace sharegrid
