// Tests for the unified control plane (DESIGN.md D10): the DES and
// wall-clock drivers must execute the same window loop, the conservative
// no-snapshot startup must pin every member to a 1/R slice on both drivers,
// the demand-spike fast path must respect its per-window budget, and the
// transport seam's three implementations must honour the exchange contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/socket_transport.hpp"
#include "coord/window_driver.hpp"
#include "live/wall_clock_admission.hpp"
#include "sched/window_scheduler.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace sharegrid {
namespace {

constexpr SimDuration kWindow = 100 * kMillisecond;
constexpr double kWindowSec = 0.1;

/// Runs @p fn, which must throw ContractViolation, and returns its message.
template <class Fn>
std::string violation_message(Fn&& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a ContractViolation, but no check fired";
  return {};
}

/// Everything a window boundary decides, captured bitwise for the
/// driver-equivalence comparison.
struct WindowRecord {
  std::vector<double> demand;     // last_local_demand at begin_window
  std::vector<double> quota;      // remaining_quota per principal
  std::vector<double> plan_diag;  // plan rate diagonal
  bool global_valid = false;

  bool operator==(const WindowRecord& o) const {
    return demand == o.demand && quota == o.quota &&
           plan_diag == o.plan_diag && global_valid == o.global_valid;
  }
};

WindowRecord snapshot_member(const coord::ControlPlane::Member& m) {
  WindowRecord rec;
  rec.demand = m.last_local_demand();
  for (std::size_t i = 0; i < m.size(); ++i) {
    rec.quota.push_back(m.window_scheduler().remaining_quota(i));
    rec.plan_diag.push_back(m.window_scheduler().last_plan().rate(i, i));
  }
  rec.global_valid = m.global().valid;
  return rec;
}

void bind_recorder(coord::ControlPlane::Member* member,
                   std::vector<WindowRecord>* records) {
  coord::ControlPlane::MemberHooks hooks;
  hooks.on_window_begun = [member, records](SimTime) {
    records->push_back(snapshot_member(*member));
  };
  member->bind(std::move(hooks));
}

// ---------------------------------------------------------------------------
// The tentpole claim: the simulator and the wall clock are two thin drivers
// of one implementation. Feed both planes the identical offered load and the
// per-window demand estimates, plans and quotas must match *bitwise*.
// ---------------------------------------------------------------------------

TEST(ControlPlane, SimAndWallClockDriversRunTheSamePath) {
  constexpr int kWindows = 6;
  const test::FixedRateScheduler scheduler({100.0, 50.0});

  coord::ControlPlaneConfig config;
  config.window = kWindow;
  config.redirector_count = 2;

  // DES side: member window tasks are created *before* the tree transport,
  // so at each shared timestamp the windows advance first and the tree
  // samples second — the same boundary order the wall-clock driver uses.
  sim::Simulator sim;
  coord::ControlPlane sim_plane(&scheduler, config);
  std::vector<coord::ControlPlane::Member*> sim_members = {
      sim_plane.add_member(), sim_plane.add_member()};
  std::vector<std::vector<WindowRecord>> sim_records(2);
  for (std::size_t m = 0; m < 2; ++m)
    bind_recorder(sim_members[m], &sim_records[m]);
  coord::SimWindowDriver sim_driver(&sim, &sim_plane);
  sim_driver.start(kWindow);
  coord::SimTreeTransport::Options tree_options;
  tree_options.period = kWindow;
  tree_options.link_delay = 0;
  tree_options.first_round = kWindow;
  coord::SimTreeTransport sim_transport(&sim, 2, 2, tree_options);
  sim_plane.connect(&sim_transport);
  sim_transport.start();

  // Wall-clock side, driven by a fake microsecond clock.
  coord::ControlPlane wall_plane(&scheduler, config);
  std::vector<coord::ControlPlane::Member*> wall_members = {
      wall_plane.add_member(), wall_plane.add_member()};
  std::vector<std::vector<WindowRecord>> wall_records(2);
  for (std::size_t m = 0; m < 2; ++m)
    bind_recorder(wall_members[m], &wall_records[m]);
  coord::InProcessTransport wall_transport(2, 2);
  wall_plane.connect(&wall_transport);
  wall_transport.start();
  coord::WallClockDriver::Options wall_options;
  wall_options.window_usec = kWindow;  // SimTime ticks are microseconds
  coord::WallClockDriver wall_driver(&wall_plane, &wall_transport,
                                     wall_options);

  for (int k = 1; k <= kWindows; ++k) {
    // Identical offered load, uneven across members so the proportional
    // local/global shares are genuinely exercised.
    for (auto* members : {&sim_members, &wall_members}) {
      (*members)[0]->record_arrival(0, 4.0 * k);
      (*members)[0]->record_arrival(1, 1.0);
      (*members)[1]->record_arrival(1, 2.0 * k);
    }
    sim.run_until(static_cast<SimTime>(k) * kWindow + 1);
    EXPECT_EQ(wall_driver.poll(static_cast<std::int64_t>(k) * kWindow), 1);
    // Same admission sequence against both planes.
    EXPECT_EQ(sim_members[0]->try_admit(0).has_value(),
              wall_members[0]->try_admit(0).has_value());
    EXPECT_EQ(sim_members[1]->try_admit(1).has_value(),
              wall_members[1]->try_admit(1).has_value());
  }

  for (std::size_t m = 0; m < 2; ++m) {
    ASSERT_EQ(sim_records[m].size(), static_cast<std::size_t>(kWindows));
    ASSERT_EQ(wall_records[m].size(), static_cast<std::size_t>(kWindows));
    for (std::size_t w = 0; w < static_cast<std::size_t>(kWindows); ++w)
      EXPECT_TRUE(sim_records[m][w] == wall_records[m][w])
          << "member " << m << " diverged at window " << w;
  }
  // Both transports must actually have delivered aggregates: window 1 is
  // snapshot-less on both drivers, window 2 onward plans on real snapshots.
  EXPECT_FALSE(sim_records[0][0].global_valid);
  EXPECT_FALSE(wall_records[0][0].global_valid);
  EXPECT_TRUE(sim_records[0][1].global_valid);
  EXPECT_TRUE(wall_records[0][1].global_valid);
}

// ---------------------------------------------------------------------------
// Conservative startup (§5.1, Figure 8 phase 1): before the first snapshot,
// every member takes exactly a 1/R slice of the saturated plan — on both
// drivers.
// ---------------------------------------------------------------------------

TEST(ControlPlane, ConservativeStartupPinsOneOverROnBothDrivers) {
  const test::FixedRateScheduler scheduler({100.0});
  coord::ControlPlaneConfig config;
  config.window = kWindow;
  config.redirector_count = 4;
  const double expected = 100.0 * kWindowSec / 4.0;  // plan * window / R

  // DES driver, no transport: members never see a snapshot.
  sim::Simulator sim;
  coord::ControlPlane sim_plane(&scheduler, config);
  for (int m = 0; m < 4; ++m) sim_plane.add_member();
  coord::SimWindowDriver sim_driver(&sim, &sim_plane);
  sim_driver.start(kWindow);
  sim.run_until(kWindow + 1);
  for (std::size_t m = 0; m < 4; ++m) {
    const coord::ControlPlane::Member* member = sim_plane.member(m);
    EXPECT_FALSE(member->global().valid);
    EXPECT_DOUBLE_EQ(member->window_scheduler().remaining_quota(0), expected);
    EXPECT_NO_THROW(audit::audit_control_plane_member_slices(
        member->window_scheduler().slices(),
        member->window_scheduler().last_plan().rate,
        /*share_cap=*/0.25, kWindowSec, 1e-7));
  }
  EXPECT_NO_THROW(sim_plane.audit_window_slices());

  // Wall-clock driver, null transport.
  coord::ControlPlane wall_plane(&scheduler, config);
  for (int m = 0; m < 4; ++m) wall_plane.add_member();
  coord::WallClockDriver::Options options;
  options.window_usec = kWindow;
  coord::WallClockDriver driver(&wall_plane, nullptr, options);
  EXPECT_EQ(driver.poll(0), 1);  // the first poll always opens a window
  for (std::size_t m = 0; m < 4; ++m) {
    const coord::ControlPlane::Member* member = wall_plane.member(m);
    EXPECT_FALSE(member->global().valid);
    EXPECT_DOUBLE_EQ(member->window_scheduler().remaining_quota(0), expected);
  }
  EXPECT_NO_THROW(wall_plane.audit_window_slices());

  // Once a snapshot arrives the member leaves phase 1: its share becomes
  // min(1, local/global) instead of 1/R.
  coord::ControlPlane::Member* hot = wall_plane.member(0);
  hot->record_arrival(0, 40.0);
  for (std::size_t m = 0; m < 4; ++m)
    wall_plane.member(m)->receive_global(0, {400.0});
  EXPECT_EQ(driver.poll(kWindow), 1);
  EXPECT_TRUE(hot->global().valid);
  const double local = hot->last_local_demand()[0];
  const double share = std::min(1.0, local / 400.0);
  EXPECT_DOUBLE_EQ(hot->window_scheduler().remaining_quota(0),
                   100.0 * kWindowSec * share);
  EXPECT_GT(hot->window_scheduler().remaining_quota(0), expected);
}

// ---------------------------------------------------------------------------
// Demand-spike fast path budget (satellite of D10): at most
// spike_replan_limit re-plans per member per window, fractional limits
// error-carried, suppressed attempts counted and reported.
// ---------------------------------------------------------------------------

TEST(ControlPlane, SpikeReplanBudgetBoundsTheFastPath) {
  const test::FixedRateScheduler scheduler({100.0});
  int replans = 0;
  int suppressed = 0;
  coord::ControlPlaneConfig config;
  config.window = kWindow;
  config.spike_replan_limit = 1.0;
  config.on_spike_replan = [&replans] { ++replans; };
  config.on_replan_suppressed = [&suppressed] { ++suppressed; };
  coord::ControlPlane plane(&scheduler, config);
  coord::ControlPlane::Member* member = plane.add_member();

  member->advance_window(0);
  EXPECT_TRUE(member->spike_replan());
  EXPECT_FALSE(member->spike_replan());  // budget exhausted this window
  EXPECT_FALSE(member->spike_replan());
  EXPECT_EQ(member->spike_replans(), 1u);
  EXPECT_EQ(member->replans_suppressed(), 2u);
  EXPECT_EQ(replans, 1);
  EXPECT_EQ(suppressed, 2);

  member->advance_window(kWindow);  // budget refills at the boundary
  EXPECT_TRUE(member->spike_replan());
  EXPECT_EQ(member->spike_replans(), 2u);
}

TEST(ControlPlane, FractionalReplanLimitAlternatesViaErrorCarry) {
  const test::FixedRateScheduler scheduler({100.0});
  coord::ControlPlaneConfig config;
  config.window = kWindow;
  config.spike_replan_limit = 0.5;  // one re-plan every other window
  coord::ControlPlane plane(&scheduler, config);
  coord::ControlPlane::Member* member = plane.add_member();

  member->advance_window(0);
  EXPECT_FALSE(member->spike_replan());  // carry 0.5: nothing released yet
  member->advance_window(kWindow);
  EXPECT_TRUE(member->spike_replan());  // carry reached 1.0
  EXPECT_FALSE(member->spike_replan());
  member->advance_window(2 * kWindow);
  EXPECT_FALSE(member->spike_replan());
  EXPECT_EQ(member->spike_replans(), 1u);
}

TEST(ControlPlane, ZeroReplanLimitDisablesTheFastPath) {
  const test::FixedRateScheduler scheduler({100.0});
  coord::ControlPlaneConfig config;
  config.window = kWindow;
  config.spike_replan_limit = 0.0;
  coord::ControlPlane plane(&scheduler, config);
  coord::ControlPlane::Member* member = plane.add_member();
  for (int w = 0; w < 3; ++w) {
    member->advance_window(w * kWindow);
    EXPECT_FALSE(member->spike_replan());
  }
  EXPECT_EQ(member->spike_replans(), 0u);
}

// ---------------------------------------------------------------------------
// Input validation: bad estimator weights and control-plane configs must be
// rejected at construction, not silently poison demand estimates.
// ---------------------------------------------------------------------------

TEST(ControlPlane, ArrivalEstimatorRejectsBadAlpha) {
  EXPECT_THROW(sched::ArrivalEstimator(0.0), ContractViolation);
  EXPECT_THROW(sched::ArrivalEstimator(-0.1), ContractViolation);
  EXPECT_THROW(sched::ArrivalEstimator(1.5), ContractViolation);
  EXPECT_THROW(
      sched::ArrivalEstimator(std::numeric_limits<double>::quiet_NaN()),
      ContractViolation);
  EXPECT_THROW(
      sched::ArrivalEstimator(std::numeric_limits<double>::infinity()),
      ContractViolation);
  EXPECT_NO_THROW(sched::ArrivalEstimator(1.0));
  EXPECT_NO_THROW(sched::ArrivalEstimator(0.3));
}

TEST(ControlPlane, ConfigValidationRejectsPoisonValues) {
  const test::FixedRateScheduler scheduler({100.0});
  const auto reject = [&scheduler](coord::ControlPlaneConfig config) {
    EXPECT_THROW(coord::ControlPlane(&scheduler, config), ContractViolation);
  };
  coord::ControlPlaneConfig config;
  config.window = 0;
  reject(config);
  config = {};
  config.redirector_count = 0;
  reject(config);
  config = {};
  config.estimator_alpha = std::numeric_limits<double>::quiet_NaN();
  reject(config);
  config = {};
  config.estimator_alpha = 1.5;
  reject(config);
  config = {};
  config.spike_replan_limit = -1.0;
  reject(config);
  config = {};
  config.spike_replan_limit = std::numeric_limits<double>::infinity();
  reject(config);
  EXPECT_NO_THROW(coord::ControlPlane(&scheduler, coord::ControlPlaneConfig{}));
}

TEST(ControlPlane, QuotaCarryResetDropsBankedFraction) {
  // Across a replan() the fractional credit earned against the superseded
  // plan must not combine with the new plan's fractions.
  sched::QuotaCarry with_reset;
  EXPECT_EQ(with_reset.take(0.6), 0u);
  with_reset.reset();
  EXPECT_EQ(with_reset.take(0.6), 0u);

  sched::QuotaCarry without_reset;
  EXPECT_EQ(without_reset.take(0.6), 0u);
  EXPECT_EQ(without_reset.take(0.6), 1u);  // 1.2 banked -> one released
}

// ---------------------------------------------------------------------------
// Transport seam.
// ---------------------------------------------------------------------------

TEST(ControlPlane, InProcessTransportExchangesSynchronously) {
  coord::InProcessTransport transport(2, 2);
  std::vector<std::uint64_t> rounds;
  std::vector<double> last_aggregate;
  for (std::size_t m = 0; m < 2; ++m) {
    transport.attach(
        m,
        [m] {
          const double base = 2.0 * static_cast<double>(m);
          return std::vector<double>{1.0 + base, 2.0 + base};
        },
        [&rounds, &last_aggregate](std::uint64_t round,
                                   const std::vector<double>& aggregate) {
          rounds.push_back(round);
          last_aggregate = aggregate;
        });
  }

  transport.exchange();  // no-op before start()
  EXPECT_TRUE(rounds.empty());
  EXPECT_EQ(transport.rounds_completed(), 0u);

  transport.start();
  transport.exchange();
  ASSERT_EQ(rounds.size(), 2u);  // both members, same round
  EXPECT_EQ(rounds[0], 0u);
  EXPECT_EQ(rounds[1], 0u);
  ASSERT_EQ(last_aggregate.size(), 2u);
  EXPECT_DOUBLE_EQ(last_aggregate[0], 4.0);  // 1 + 3
  EXPECT_DOUBLE_EQ(last_aggregate[1], 6.0);  // 2 + 4
  EXPECT_EQ(transport.messages_sent(), 4u);  // R up + R down
  transport.exchange();
  EXPECT_EQ(rounds.back(), 1u);
  EXPECT_EQ(transport.rounds_completed(), 2u);

  transport.stop();
  transport.exchange();  // no-op after stop()
  EXPECT_EQ(transport.rounds_completed(), 2u);
}

// The seam's third implementation is real now: a root and a leaf transport
// (two logical processes sharing this test process) complete one round over
// loopback TCP. The full protocol matrix — deadlines, staleness, fuzzing —
// lives in socket_transport_test.cpp; this pins the ControlPlane-facing
// contract: attach/start/poll/stop, round tags from 1, star accounting.
TEST(ControlPlane, SocketTransportRunsALoopbackRound) {
  coord::SocketTransport::Options root_options;
  root_options.peers = {"127.0.0.1:0", "127.0.0.1:0"};
  root_options.process_index = 0;
  root_options.fleet_size = 2;
  root_options.round_period_usec = 1000;
  root_options.round_deadline_usec = 1'000'000;
  root_options.io_timeout_ms = 10;
  coord::SocketTransport root(1, 2, root_options);
  std::vector<std::uint64_t> root_rounds;
  std::vector<double> root_aggregate;
  root.attach(
      0, [] { return std::vector<double>{1.0, 2.0}; },
      [&](std::uint64_t round, const std::vector<double>& sum) {
        root_rounds.push_back(round);
        root_aggregate = sum;
      });
  root.start();

  coord::SocketTransport::Options leaf_options = root_options;
  leaf_options.process_index = 1;
  leaf_options.member_offset = 1;
  leaf_options.peers[0] = "127.0.0.1:" + std::to_string(root.listen_port());
  coord::SocketTransport leaf(1, 2, leaf_options);
  std::vector<std::uint64_t> leaf_rounds;
  std::vector<double> leaf_aggregate;
  leaf.attach(
      0, [] { return std::vector<double>{3.0, 4.0}; },
      [&](std::uint64_t round, const std::vector<double>& sum) {
        leaf_rounds.push_back(round);
        leaf_aggregate = sum;
      });
  leaf.start();

  // Fake clocks, real sockets: poll both sides until the aggregate lands on
  // the leaf, giving the background readers a beat between polls.
  std::int64_t now = 0;
  for (int i = 0; i < 2000 && leaf_rounds.empty(); ++i) {
    leaf.poll(now);
    root.poll(now);
    now += 500;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  root.stop();
  leaf.stop();

  ASSERT_FALSE(root_rounds.empty());
  ASSERT_FALSE(leaf_rounds.empty());
  EXPECT_EQ(root_rounds.front(), 1u);  // round tags start at 1
  EXPECT_EQ(leaf_rounds.front(), 1u);
  const std::vector<double> expected = {4.0, 6.0};  // summed in member order
  EXPECT_EQ(root_aggregate, expected);
  EXPECT_EQ(leaf_aggregate, expected);
  // Star accounting across the fleet: R reports up + R broadcasts down.
  EXPECT_GE(root.messages_sent() + leaf.messages_sent(),
            4u * root_rounds.size());
}

// ---------------------------------------------------------------------------
// Control-plane audits: each check passes on honest state and fires on
// corrupted state with an actionable message.
// ---------------------------------------------------------------------------

TEST(ControlPlaneAudit, SnapshotRoundsMustStrictlyIncrease) {
  EXPECT_NO_THROW(audit::audit_control_plane_snapshot(false, 0, 0));
  EXPECT_NO_THROW(audit::audit_control_plane_snapshot(true, 3, 4));
  EXPECT_NO_THROW(audit::audit_control_plane_snapshot(true, 3, 9));  // gap ok
  const std::string repeat = violation_message(
      [] { audit::audit_control_plane_snapshot(true, 5, 5); });
  EXPECT_NE(repeat.find("coord.snapshot-monotone"), std::string::npos);
  const std::string regress = violation_message(
      [] { audit::audit_control_plane_snapshot(true, 5, 3); });
  EXPECT_NE(regress.find("coord.snapshot-monotone"), std::string::npos);
}

TEST(ControlPlaneAudit, MemberSliceCapBoundsEachCell) {
  Matrix plan(1, 1, 100.0);
  Matrix slices(1, 1, 2.5);  // exactly plan * 1/R * window
  EXPECT_NO_THROW(audit::audit_control_plane_member_slices(
      slices, plan, /*share_cap=*/0.25, kWindowSec, 1e-7));

  slices(0, 0) = 2.6;  // above the 1/R cap
  const std::string over = violation_message([&] {
    audit::audit_control_plane_member_slices(slices, plan, 0.25, kWindowSec,
                                             1e-7);
  });
  EXPECT_NE(over.find("coord.member-slice-cap"), std::string::npos);

  slices(0, 0) = -0.5;  // negative slice
  const std::string negative = violation_message([&] {
    audit::audit_control_plane_member_slices(slices, plan, 0.25, kWindowSec,
                                             1e-7);
  });
  EXPECT_NE(negative.find("coord.member-slice-cap"), std::string::npos);

  const Matrix wrong_shape(2, 2, 0.0);
  const std::string shape = violation_message([&] {
    audit::audit_control_plane_member_slices(wrong_shape, plan, 0.25,
                                             kWindowSec, 1e-7);
  });
  EXPECT_NE(shape.find("coord.slice-shape"), std::string::npos);
}

TEST(ControlPlaneAudit, SliceSumConservationAcrossTheFleet) {
  Matrix plan(1, 1, 100.0);
  Matrix sum(1, 1, 10.0);  // the full plan cell: 100 req/s * 0.1 s
  EXPECT_NO_THROW(
      audit::audit_control_plane_slice_sum(sum, plan, kWindowSec, 1e-7));
  sum(0, 0) = 10.1;
  const std::string msg = violation_message(
      [&] { audit::audit_control_plane_slice_sum(sum, plan, kWindowSec, 1e-7); });
  EXPECT_NE(msg.find("coord.slice-conservation"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The live facade: multiple redirectors in one process share one plane and
// exchange snapshots in-process.
// ---------------------------------------------------------------------------

TEST(WallClockAdmission, MultiMemberFacadeSharesOnePlane) {
  const test::FixedRateScheduler scheduler({1000.0});
  live::WallClockAdmission::Config config;
  config.window_usec = 100000;
  config.redirector_count = 2;
  live::WallClockAdmission admission(&scheduler, config);
  EXPECT_EQ(admission.member_count(), 2u);

  const auto first = admission.try_admit(/*member_index=*/0, /*principal=*/0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0u);
  EXPECT_TRUE(admission.try_admit(/*member_index=*/1, /*principal=*/0)
                  .has_value());
  EXPECT_GE(admission.windows_begun(), 1u);
  EXPECT_GE(admission.snapshot_rounds(), 1u);
  EXPECT_EQ(admission.plane().member_count(), 2u);
}

}  // namespace
}  // namespace sharegrid
