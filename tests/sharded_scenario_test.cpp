// End-to-end tests for the cluster-partitioned scenario runner
// (experiments/sharded_scenario.cpp): shard-count invariance of the full
// merged result, the serial-as-oracle audit, scaling knobs, and the
// partitioning contract's precondition checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "experiments/scenario.hpp"
#include "util/assert.hpp"

namespace sharegrid::experiments {
namespace {

/// Two-principal community sharing a 4-cluster deployment: each cluster
/// hosts one server per principal plus two client machines, and the star
/// exchange runs on 50 ms links (= the engine lookahead).
ScenarioConfig clustered_config(std::size_t clusters, std::size_t shards) {
  ScenarioConfig c;
  c.graph.add_principal("A", 0.0);
  c.graph.add_principal("B", 0.0);
  c.graph.set_agreement(0, 1, 0.3, 1.0);
  c.graph.set_agreement(1, 0, 0.3, 1.0);
  c.layer = Layer::kL4;
  c.servers = {{"A", 200.0}, {"B", 200.0}};
  ClientSpec a;
  a.name = "load-a";
  a.principal = "A";
  a.rate = 300.0;
  a.active_sec = {{0.0, 10.0}};
  ClientSpec b = a;
  b.name = "load-b";
  b.principal = "B";
  b.rate = 120.0;
  b.active_sec = {{2.0, 8.0}};
  c.clients = {a, b};
  c.phases = {{"steady", 3.0, 8.0}};
  c.duration_sec = 10.0;
  c.tree_link_delay = 50 * kMillisecond;
  c.clusters = clusters;
  c.sim_shards = shards;
  c.seed = 1337;
  return c;
}

TEST(ClusteredScenario, ServesTrafficAcrossClusters) {
  const ScenarioResult result = run_scenario(clustered_config(4, 1));
  EXPECT_GT(result.total_admitted, 0u);
  EXPECT_GT(result.metrics.served(0).total_events(), 0u);
  EXPECT_GT(result.metrics.served(1).total_events(), 0u);
  EXPECT_GT(result.coordination_messages, 0u);
  ASSERT_EQ(result.phase_reports.size(), 1u);
  EXPECT_GT(result.phase_reports[0].served_rate[0], 0.0);
}

TEST(ClusteredScenario, BitwiseInvariantToShardCount) {
  const ScenarioResult serial = run_scenario(clustered_config(4, 1));
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const ScenarioResult parallel = run_scenario(clustered_config(4, shards));
    // The audit comparator IS the equality check: it throws on the first
    // diverging bin/stat with a diagnostic naming it.
    EXPECT_NO_THROW(audit::audit_shard_merge_match(parallel, serial))
        << "sharded run diverged from serial oracle at shards=" << shards;
    EXPECT_EQ(parallel.total_admitted, serial.total_admitted);
    EXPECT_EQ(parallel.coordination_messages, serial.coordination_messages);
    EXPECT_EQ(parallel.metrics.latency(0).mean(),
              serial.metrics.latency(0).mean());
    EXPECT_EQ(parallel.server_backlog_sec.mean(),
              serial.server_backlog_sec.mean());
  }
}

TEST(ClusteredScenario, MergeAuditDetectsDivergence) {
  const ScenarioResult serial = run_scenario(clustered_config(2, 1));
  ScenarioResult tampered = run_scenario(clustered_config(2, 1));
  tampered.total_admitted += 1;
  EXPECT_THROW(audit::audit_shard_merge_match(tampered, serial),
               ContractViolation);
  ScenarioResult skewed = run_scenario(clustered_config(2, 1));
  skewed.metrics.on_served(0, seconds(5.0));
  EXPECT_THROW(audit::audit_shard_merge_match(skewed, serial),
               ContractViolation);
}

TEST(ClusteredScenario, ClientScaleMultipliesOfferedLoad) {
  ScenarioConfig base = clustered_config(2, 2);
  base.duration_sec = 6.0;
  base.phases = {{"steady", 1.0, 5.0}};
  // Keep the system underloaded (3x the load still fits in capacity) so the
  // closed loop doesn't throttle generation and replication shows through.
  for (ClientSpec& spec : base.clients) spec.rate = 40.0;
  ScenarioConfig scaled = base;
  scaled.client_scale = 3;
  const ScenarioResult one = run_scenario(base);
  const ScenarioResult three = run_scenario(scaled);
  EXPECT_GT(three.metrics.offered(0).total_events(),
            2 * one.metrics.offered(0).total_events());
}

TEST(ClusteredScenario, RequiresTheParticipationContract) {
  ScenarioConfig no_delay = clustered_config(2, 1);
  no_delay.tree_link_delay = 0;
  EXPECT_THROW(run_scenario(no_delay), ContractViolation);

  ScenarioConfig l7 = clustered_config(2, 1);
  l7.layer = Layer::kL7;
  EXPECT_THROW(run_scenario(l7), ContractViolation);

  ScenarioConfig fleet = clustered_config(2, 1);
  fleet.redirector_count = 2;
  EXPECT_THROW(run_scenario(fleet), ContractViolation);

  ScenarioConfig rewire = clustered_config(2, 1);
  rewire.capacity_events = {{5.0, 0, 100.0}};
  EXPECT_THROW(run_scenario(rewire), ContractViolation);
}

}  // namespace
}  // namespace sharegrid::experiments
