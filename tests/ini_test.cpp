// Unit tests for the INI reader and the scenario-file loader.
#include <gtest/gtest.h>

#include "experiments/scenario_ini.hpp"
#include "util/assert.hpp"
#include "util/ini.hpp"

namespace sharegrid {
namespace {

TEST(Ini, ParsesGlobalAndSections) {
  const IniDocument doc = parse_ini(
      "speed = 3.5\n"
      "# a comment\n"
      "[alpha]\n"
      "name = first ; trailing comment\n"
      "[beta]\n"
      "flag = true\n");
  EXPECT_DOUBLE_EQ(*doc.global.get_double("speed"), 3.5);
  ASSERT_EQ(doc.sections.size(), 2u);
  EXPECT_EQ(*doc.sections[0].get_string("name"), "first");
  EXPECT_TRUE(*doc.sections[1].get_bool("flag"));
}

TEST(Ini, RepeatedSectionsKeepOrder) {
  const IniDocument doc = parse_ini(
      "[client]\nname = a\n[client]\nname = b\n[other]\nx = 1\n");
  const auto clients = doc.all("client");
  ASSERT_EQ(clients.size(), 2u);
  EXPECT_EQ(*clients[0]->get_string("name"), "a");
  EXPECT_EQ(*clients[1]->get_string("name"), "b");
  EXPECT_NE(doc.unique("other"), nullptr);
  EXPECT_EQ(doc.unique("missing"), nullptr);
  EXPECT_THROW(doc.unique("client"), ContractViolation);
}

TEST(Ini, DoubleLists) {
  const IniDocument doc = parse_ini("values = 1, 2.5, -3\n");
  const auto list = *doc.global.get_double_list("values");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[1], 2.5);
  EXPECT_DOUBLE_EQ(list[2], -3.0);
}

TEST(Ini, MissingKeysAreNullopt) {
  const IniDocument doc = parse_ini("a = 1\n");
  EXPECT_FALSE(doc.global.get_double("b").has_value());
  EXPECT_FALSE(doc.global.get_string("b").has_value());
}

TEST(Ini, MalformedInputsThrowWithLineNumbers) {
  EXPECT_THROW(parse_ini("[unterminated\n"), ContractViolation);
  EXPECT_THROW(parse_ini("[]\n"), ContractViolation);
  EXPECT_THROW(parse_ini("no equals sign\n"), ContractViolation);
  EXPECT_THROW(parse_ini("= value-without-key\n"), ContractViolation);
  EXPECT_THROW(parse_ini("a = 1\na = 2\n"), ContractViolation);
  try {
    parse_ini("ok = 1\nbroken line\n");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Ini, TypedGettersRejectGarbage) {
  const IniDocument doc = parse_ini("n = abc\nb = maybe\nl = 1,x\n");
  EXPECT_THROW(doc.global.get_double("n"), ContractViolation);
  EXPECT_THROW(doc.global.get_bool("b"), ContractViolation);
  EXPECT_THROW(doc.global.get_double_list("l"), ContractViolation);
}

TEST(Ini, RequireVariantsNameTheMissingKey) {
  const IniDocument doc = parse_ini("[server]\ncapacity = 320\n");
  try {
    doc.sections[0].require_string("owner");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("owner"), std::string::npos);
  }
  EXPECT_DOUBLE_EQ(doc.sections[0].require_double("capacity"), 320.0);
}

// --- Scenario loading --------------------------------------------------------

constexpr const char* kMinimalScenario = R"ini(
layer = l4
scheduler = response_time
duration = 30
[principal]
name = A
[principal]
name = B
[agreement]
owner = B
user = A
lower = 0.5
upper = 0.5
[server]
owner = A
capacity = 320
[server]
owner = B
capacity = 320
[client]
name = C1
principal = A
redirector = 0
rate = 400
active = 0-10, 20-30
[phase]
name = p1
start = 1
end = 9
)ini";

TEST(ScenarioIni, BuildsFullConfig) {
  using namespace experiments;
  const ScenarioConfig config = scenario_from_ini(parse_ini(kMinimalScenario));
  EXPECT_EQ(config.layer, Layer::kL4);
  EXPECT_EQ(config.scheduler, SchedulerKind::kResponseTime);
  EXPECT_DOUBLE_EQ(config.duration_sec, 30.0);
  EXPECT_EQ(config.graph.size(), 2u);
  EXPECT_DOUBLE_EQ(config.graph.lower_bound(1, 0), 0.5);
  ASSERT_EQ(config.servers.size(), 2u);
  ASSERT_EQ(config.clients.size(), 1u);
  ASSERT_EQ(config.clients[0].active_sec.size(), 2u);
  EXPECT_DOUBLE_EQ(config.clients[0].active_sec[1].first, 20.0);
  ASSERT_EQ(config.phases.size(), 1u);
}

TEST(ScenarioIni, LoadedScenarioActuallyRuns) {
  using namespace experiments;
  const ScenarioConfig config = scenario_from_ini(parse_ini(kMinimalScenario));
  const ScenarioResult result = run_scenario(config);
  // A alone: its own 320 plus half of B's = 400-capped by the one client.
  EXPECT_NEAR(result.phase_served(0, 0), 400.0, 40.0);
}

TEST(ScenarioIni, RejectsUnknownEnumValues) {
  using namespace experiments;
  EXPECT_THROW(scenario_from_ini(parse_ini("layer = l5\n")),
               ContractViolation);
  EXPECT_THROW(scenario_from_ini(parse_ini("scheduler = fastest\n")),
               ContractViolation);
  EXPECT_THROW(scenario_from_ini(parse_ini("stale_policy = hopeful\n")),
               ContractViolation);
}

TEST(ScenarioIni, RejectsDanglingReferences) {
  using namespace experiments;
  const std::string bad_owner = std::string(kMinimalScenario) +
                                "[server]\nowner = nobody\ncapacity = 1\n";
  EXPECT_THROW(scenario_from_ini(parse_ini(bad_owner)), ContractViolation);

  const std::string bad_range =
      std::string(kMinimalScenario) +
      "[client]\nname = X\nprincipal = A\nrate = 1\nactive = 9-3\n";
  EXPECT_THROW(scenario_from_ini(parse_ini(bad_range)), ContractViolation);
}

TEST(ScenarioIni, RequiresCoreSections) {
  using namespace experiments;
  EXPECT_THROW(scenario_from_ini(parse_ini("duration = 5\n")),
               ContractViolation);
}

TEST(ScenarioIni, ControlPlaneSectionSetsCoordinationKnobs) {
  using namespace experiments;
  const std::string text = std::string(kMinimalScenario) +
                           "[control_plane]\n"
                           "tree_fanout = 2\n"
                           "snapshot_period_ms = 200\n"
                           "spike_replan_limit = 0.5\n";
  const ScenarioConfig config = scenario_from_ini(parse_ini(text));
  EXPECT_EQ(config.tree_fanout, 2u);
  EXPECT_EQ(config.tree_period, 200 * kMillisecond);
  EXPECT_DOUBLE_EQ(config.spike_replan_limit, 0.5);

  // Omitting the section keeps the defaults.
  const ScenarioConfig bare = scenario_from_ini(parse_ini(kMinimalScenario));
  EXPECT_EQ(bare.tree_fanout, 0u);
  EXPECT_EQ(bare.tree_period, 0);
  EXPECT_DOUBLE_EQ(bare.spike_replan_limit, 1.0);
}

TEST(ScenarioIni, ControlPlaneSectionValidatesRanges) {
  using namespace experiments;
  const auto with_section = [](const std::string& body) {
    return std::string(kMinimalScenario) + "[control_plane]\n" + body;
  };
  // A fanout of 1 would be a degenerate chain, not a combining tree.
  EXPECT_THROW(scenario_from_ini(parse_ini(with_section("tree_fanout = 1\n"))),
               ContractViolation);
  EXPECT_THROW(
      scenario_from_ini(parse_ini(with_section("snapshot_period_ms = 0\n"))),
      ContractViolation);
  EXPECT_THROW(
      scenario_from_ini(parse_ini(with_section("snapshot_period_ms = -5\n"))),
      ContractViolation);
  EXPECT_THROW(
      scenario_from_ini(parse_ini(with_section("spike_replan_limit = -1\n"))),
      ContractViolation);
  const std::string duplicated = with_section("tree_fanout = 2\n") +
                                 "[control_plane]\ntree_fanout = 4\n";
  EXPECT_THROW(scenario_from_ini(parse_ini(duplicated)), ContractViolation);
}

TEST(ScenarioIni, ControlPlaneMembershipKnobs) {
  using namespace experiments;
  const std::string text = std::string(kMinimalScenario) +
                           "[control_plane]\n"
                           "lease_ttl_ms = 250\n"
                           "heartbeat_ms = 50\n"
                           "reconnect_base_ms = 5\n"
                           "reconnect_max_ms = 80\n"
                           "election_enabled = false\n"
                           "allow_nonlocal = true\n";
  const ScenarioConfig config = scenario_from_ini(parse_ini(text));
  EXPECT_DOUBLE_EQ(config.lease_ttl_ms, 250.0);
  EXPECT_DOUBLE_EQ(config.heartbeat_ms, 50.0);
  EXPECT_DOUBLE_EQ(config.reconnect_base_ms, 5.0);
  EXPECT_DOUBLE_EQ(config.reconnect_max_ms, 80.0);
  EXPECT_FALSE(config.election_enabled);
  EXPECT_TRUE(config.allow_nonlocal);

  // Defaults without the keys: loopback-only, election on, 500 ms TTL.
  const ScenarioConfig bare = scenario_from_ini(parse_ini(kMinimalScenario));
  EXPECT_DOUBLE_EQ(bare.lease_ttl_ms, 500.0);
  EXPECT_DOUBLE_EQ(bare.heartbeat_ms, 0.0);
  EXPECT_TRUE(bare.election_enabled);
  EXPECT_FALSE(bare.allow_nonlocal);

  const auto with_section = [](const std::string& body) {
    return std::string(kMinimalScenario) + "[control_plane]\n" + body;
  };
  EXPECT_THROW(
      scenario_from_ini(parse_ini(with_section("lease_ttl_ms = 0\n"))),
      ContractViolation);
  EXPECT_THROW(
      scenario_from_ini(parse_ini(with_section("heartbeat_ms = -1\n"))),
      ContractViolation);
  EXPECT_THROW(
      scenario_from_ini(parse_ini(with_section("reconnect_base_ms = 0\n"))),
      ContractViolation);
  // The backoff cap may not undercut the base.
  EXPECT_THROW(scenario_from_ini(parse_ini(with_section(
                   "reconnect_base_ms = 100\nreconnect_max_ms = 10\n"))),
               ContractViolation);
}

TEST(ScenarioIni, MissingFileThrows) {
  EXPECT_THROW(parse_ini_file("/nonexistent/path.ini"), ContractViolation);
}

}  // namespace
}  // namespace sharegrid
