// Shared helpers for sharegrid tests.
#pragma once

#include <algorithm>
#include <vector>

#include "sched/scheduler.hpp"

namespace sharegrid::test {

/// Deterministic scheduler granting principal i a fixed rate on server i,
/// capped by demand — lets node tests pin admission behaviour precisely.
class FixedRateScheduler final : public sched::Scheduler {
 public:
  explicit FixedRateScheduler(std::vector<double> rates)
      : rates_(std::move(rates)) {}

  sched::Plan plan(const std::vector<double>& demand) const override {
    sched::Plan p;
    p.demand = demand;
    p.rate = Matrix(rates_.size(), rates_.size(), 0.0);
    for (std::size_t i = 0; i < rates_.size(); ++i)
      p.rate(i, i) = std::min(rates_[i], demand[i]);
    return p;
  }
  std::size_t size() const override { return rates_.size(); }

 private:
  std::vector<double> rates_;
};

}  // namespace sharegrid::test
