// Property suite over randomly generated end-to-end deployments: whatever
// the topology, agreements, and load, the enforcement invariants must hold.
#include <gtest/gtest.h>

#include <string>

#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "util/rng.hpp"

namespace sharegrid::experiments {
namespace {

struct RandomScenario {
  ScenarioConfig config;
  core::AccessLevels levels;
  double total_capacity = 0.0;
};

/// Builds a random but well-formed deployment: 2-4 principals with a random
/// agreement DAG, 1-3 servers, 1-2 redirectors, 2-5 clients with random
/// rates, one measurement phase.
RandomScenario make_random_scenario(std::uint64_t seed) {
  Rng rng(seed);
  RandomScenario out;
  ScenarioConfig& c = out.config;

  const std::size_t n = 2 + rng.bounded(3);
  for (std::size_t i = 0; i < n; ++i)
    c.graph.add_principal("P" + std::to_string(i), 0.0);
  for (core::PrincipalId i = 0; i < n; ++i) {
    double budget = 1.0;
    for (core::PrincipalId j = i + 1; j < n; ++j) {
      if (!rng.chance(0.6)) continue;
      const double lb = rng.uniform(0.0, budget * 0.6);
      const double ub = rng.uniform(lb, 1.0);
      if (ub <= 0.0) continue;
      c.graph.set_agreement(i, j, lb, ub);
      budget -= lb;
    }
  }

  c.layer = rng.chance(0.5) ? Layer::kL4 : Layer::kL7;
  c.redirector_count = 1 + rng.bounded(2);

  const std::size_t server_count = 1 + rng.bounded(3);
  for (std::size_t s = 0; s < server_count; ++s) {
    // Owners are always the first principals so capacity skews upstream.
    const auto owner = static_cast<core::PrincipalId>(rng.bounded(n));
    const double capacity = 80.0 + rng.uniform(0.0, 320.0);
    c.servers.push_back({"P" + std::to_string(owner), capacity});
    out.total_capacity += capacity;
  }

  const std::size_t client_count = 2 + rng.bounded(4);
  for (std::size_t k = 0; k < client_count; ++k) {
    ClientSpec spec;
    spec.name = "C" + std::to_string(k);
    spec.principal = "P" + std::to_string(rng.bounded(n));
    spec.redirector = rng.bounded(c.redirector_count);
    spec.rate = 40.0 + rng.uniform(0.0, 360.0);
    spec.active_sec = {{0.0, 40.0}};
    c.clients.push_back(std::move(spec));
  }

  c.phases = {{"steady", 10.0, 38.0}};
  c.duration_sec = 40.0;
  c.seed = seed * 977;

  // Recompute what the analysis will see (capacities from servers).
  core::AgreementGraph g = c.graph;
  for (core::PrincipalId p = 0; p < n; ++p) g.set_capacity(p, 0.0);
  for (const auto& spec : c.servers) {
    const auto owner = g.find(spec.owner);
    g.set_capacity(owner, g.capacity(owner) + spec.capacity);
  }
  out.levels = core::compute_access_levels(g);
  return out;
}

class ScenarioPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioPropertyTest, EnforcementInvariantsHold) {
  const RandomScenario scenario = make_random_scenario(GetParam());
  const ScenarioResult result = run_scenario(scenario.config);
  const std::size_t n = result.principal_names.size();

  // Per-principal offered demand during the phase.
  std::vector<double> offered(n, 0.0);
  std::vector<double> served(n, 0.0);
  double total_served = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    offered[p] = result.phase_reports[0].offered_rate[p];
    served[p] = result.phase_reports[0].served_rate[p];
    total_served += served[p];

    // I1: nothing is served that was not offered (plus binning slack).
    EXPECT_LE(served[p], offered[p] * 1.05 + 8.0)
        << result.principal_names[p];

    // I2: agreement ceiling — a principal is never served beyond
    // MC + OC (plus tolerance for startup transients in the average).
    const double ceiling = scenario.levels.mandatory_capacity[p] +
                           scenario.levels.optional_capacity[p];
    EXPECT_LE(served[p], ceiling * 1.05 + 8.0) << result.principal_names[p];
  }

  // I3: aggregate conservation — total service never exceeds physical
  // capacity.
  EXPECT_LE(total_served, scenario.total_capacity * 1.02 + 8.0);

  // I4: the server pool is never driven far beyond capacity (bounded
  // backlog; generous bound covers closed-loop bursts).
  EXPECT_LT(result.server_backlog_sec.max(), 2.0);

  // I5: mandatory floors — a principal whose offered load stays under its
  // guarantee is (nearly) fully served. Skip principals involved in
  // transients (offered close to the floor).
  for (std::size_t p = 0; p < n; ++p) {
    const double mc = scenario.levels.mandatory_capacity[p];
    if (offered[p] > 5.0 && offered[p] < 0.8 * mc) {
      EXPECT_GE(served[p], 0.85 * offered[p]) << result.principal_names[p];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace sharegrid::experiments
