// Tests for request traces and the open-loop TraceClient.
#include <gtest/gtest.h>

#include "coord/control_plane.hpp"
#include "coord/window_driver.hpp"
#include "nodes/l4_redirector.hpp"
#include "nodes/server.hpp"
#include "nodes/trace_client.hpp"
#include "sched/response_time_scheduler.hpp"
#include "test_helpers.hpp"
#include "workload/trace.hpp"

namespace sharegrid {
namespace {

using workload::ActivityPlan;
using workload::ReplySizeDistribution;
using workload::RequestTrace;
using workload::TraceEntry;

TEST(RequestTrace, SynthesizedRatesMatchSpec) {
  ActivityPlan plan(2);
  plan.always_active(0, seconds(50));
  plan.add_interval(1, seconds(10), seconds(40));

  const ReplySizeDistribution sizes;
  const RequestTrace trace =
      RequestTrace::synthesize(plan, {0, 1}, {200.0, 100.0}, sizes, 42);

  // Client 0: 200/s over 50 s = ~10000; client 1: 100/s over 30 s = ~3000.
  const auto counts = trace.counts_by_principal();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_NEAR(static_cast<double>(counts[0]), 10000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(counts[1]), 3000.0, 170.0);
  EXPECT_NEAR(trace.rate_of(0, seconds(50)), 200.0, 6.0);
}

TEST(RequestTrace, EntriesAreTimeOrderedAndInsideIntervals) {
  ActivityPlan plan(1);
  plan.add_interval(0, seconds(5), seconds(15));
  const ReplySizeDistribution sizes;
  const RequestTrace trace =
      RequestTrace::synthesize(plan, {0}, {50.0}, sizes, 7);

  SimTime last = 0;
  for (const TraceEntry& e : trace.entries()) {
    EXPECT_GE(e.time, last);
    EXPECT_GE(e.time, seconds(5));
    EXPECT_LT(e.time, seconds(15));
    EXPECT_EQ(e.weight, 1.0);  // unweighted by default
    last = e.time;
  }
}

TEST(RequestTrace, DeterministicInSeed) {
  ActivityPlan plan(1);
  plan.always_active(0, seconds(10));
  const ReplySizeDistribution sizes;
  const RequestTrace a = RequestTrace::synthesize(plan, {0}, {100.0}, sizes, 5);
  const RequestTrace b = RequestTrace::synthesize(plan, {0}, {100.0}, sizes, 5);
  const RequestTrace c = RequestTrace::synthesize(plan, {0}, {100.0}, sizes, 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.entries()[i].time, b.entries()[i].time);
  EXPECT_NE(a.size(), c.size());
}

TEST(RequestTrace, AppendValidatesOrder) {
  RequestTrace trace;
  trace.append({seconds(1), 0, 1.0, 100.0});
  EXPECT_THROW(trace.append({seconds(0.5), 0, 1.0, 100.0}),
               ContractViolation);
  EXPECT_THROW(trace.append({seconds(2), core::kNoPrincipal, 1.0, 100.0}),
               ContractViolation);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceClient, ReplaysOpenLoopThroughL4) {
  // Offered load is fixed by the trace: even though only 40/s are admitted,
  // the client keeps issuing at the full trace rate (open loop), unlike the
  // closed-loop ClientMachine.
  sim::Simulator sim;
  nodes::Metrics metrics(1);
  nodes::Server server(&sim, &metrics, {"s", 0, 1000.0, {1, 80}});
  nodes::ServerPool pool;
  pool.add(&server);
  test::FixedRateScheduler scheduler({40.0});
  coord::ControlPlane plane(&scheduler, {});
  nodes::L4Redirector redirector(&sim, &metrics, &pool, plane.add_member(),
                                 {});
  coord::SimWindowDriver driver(&sim, &plane);
  driver.start(100 * kMillisecond);

  ActivityPlan plan(1);
  plan.always_active(0, seconds(10));
  const ReplySizeDistribution sizes;
  const RequestTrace trace =
      RequestTrace::synthesize(plan, {0}, {200.0}, sizes, 11);

  nodes::TraceClient client(&sim, &metrics, &redirector, &trace, {}, Rng(3));
  client.start();
  sim.run_until(seconds(10));

  EXPECT_EQ(client.issued(), trace.size());
  // Offered tracks the trace (~200/s); served tracks the 40/s quota.
  EXPECT_NEAR(metrics.offered(0).average_rate(0, seconds(10)), 200.0, 10.0);
  EXPECT_NEAR(metrics.served(0).average_rate(seconds(2), seconds(10)), 40.0,
              5.0);
  // The unserved backlog sits in the redirector queue, still growing.
  EXPECT_GT(redirector.queue_length(0), 1000u);
}

TEST(TraceClient, IdenticalInputForDifferentSchedulers) {
  // The point of open loop: two different schedulers see the same issued
  // request ids at the same times.
  ActivityPlan plan(1);
  plan.always_active(0, seconds(5));
  const ReplySizeDistribution sizes;
  const RequestTrace trace =
      RequestTrace::synthesize(plan, {0}, {100.0}, sizes, 13);

  auto run = [&](double rate) {
    sim::Simulator sim;
    nodes::Metrics metrics(1);
    nodes::Server server(&sim, &metrics, {"s", 0, 1000.0, {1, 80}});
    nodes::ServerPool pool;
    pool.add(&server);
    test::FixedRateScheduler scheduler({rate});
    coord::ControlPlane plane(&scheduler, {});
    nodes::L4Redirector redirector(&sim, &metrics, &pool, plane.add_member(),
                                   {});
    coord::SimWindowDriver driver(&sim, &plane);
    driver.start(100 * kMillisecond);
    nodes::TraceClient client(&sim, &metrics, &redirector, &trace, {},
                              Rng(3));
    client.start();
    sim.run_until(seconds(5));
    return metrics.offered(0).total_events();
  };

  EXPECT_EQ(run(10.0), run(1000.0));  // offered load is scheduler-invariant
}

}  // namespace
}  // namespace sharegrid
