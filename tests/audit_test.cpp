// Tests for the runtime invariant auditor: each check must (a) pass on
// honestly-computed state and (b) fire with an actionable message when that
// state is deliberately corrupted. The corruption tests are what make
// SHAREGRID_AUDIT builds trustworthy — a check that can never fire verifies
// nothing.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "core/agreement_graph.hpp"
#include "core/entitlement.hpp"
#include "core/flow.hpp"
#include "experiments/paper_figures.hpp"
#include "l4/packet.hpp"
#include "lp/problem.hpp"
#include "lp/solve_context.hpp"
#include "util/assert.hpp"

namespace sharegrid {
namespace {

/// Runs @p fn, which must throw ContractViolation, and returns its message.
template <class Fn>
std::string violation_message(Fn&& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a ContractViolation, but no audit check fired";
  return {};
}

core::AgreementGraph two_principal_graph() {
  core::AgreementGraph g;
  g.add_principal("A", 100.0);
  g.add_principal("B", 200.0);
  g.set_agreement(/*owner=*/1, /*user=*/0, 0.2, 0.5);  // B shares with A
  return g;
}

// ---------------------------------------------------------------------------
// core/flow + core/entitlement
// ---------------------------------------------------------------------------

TEST(AuditFlow, HonestAccessLevelsPass) {
  const core::AgreementGraph g = two_principal_graph();
  const core::AccessLevels levels = core::compute_access_levels(g);
  EXPECT_FALSE(core::has_agreement_cycle(g));
  EXPECT_NO_THROW(audit::audit_access_levels(g, levels,
                                             /*expect_exact_partition=*/true));
}

TEST(AuditFlow, AllPaperFigureGraphsPass) {
  for (const auto& figure : experiments::all_figures()) {
    const core::AgreementGraph& g = figure.config.graph;
    const core::AccessLevels levels = core::compute_access_levels(g);
    EXPECT_NO_THROW(audit::audit_access_levels(
        g, levels, !core::has_agreement_cycle(g)))
        << "figure " << figure.id;
  }
}

TEST(AuditFlow, CorruptedDiagonalFires) {
  const core::AgreementGraph g = two_principal_graph();
  core::AccessLevels levels = core::compute_access_levels(g);
  levels.mandatory_transfer(0, 0) = 0.9;  // a principal must own itself fully
  const std::string msg = violation_message(
      [&] { audit::audit_access_levels(g, levels, true); });
  EXPECT_NE(msg.find("[audit] flow.transfer-diagonal"), std::string::npos);
  EXPECT_NE(msg.find("A"), std::string::npos) << "names the principal: " << msg;
}

TEST(AuditFlow, NegativeTransferFires) {
  const core::AgreementGraph g = two_principal_graph();
  core::AccessLevels levels = core::compute_access_levels(g);
  levels.optional_transfer(1, 0) = -0.25;
  const std::string msg = violation_message(
      [&] { audit::audit_access_levels(g, levels, true); });
  EXPECT_NE(msg.find("flow.transfer-negative"), std::string::npos);
}

TEST(AuditFlow, MandatoryTransferAboveOneFires) {
  const core::AgreementGraph g = two_principal_graph();
  core::AccessLevels levels = core::compute_access_levels(g);
  levels.mandatory_transfer(1, 0) = 1.5;  // no lb path measure can exceed 1
  const std::string msg = violation_message(
      [&] { audit::audit_access_levels(g, levels, true); });
  EXPECT_NE(msg.find("flow.mandatory-transfer-bound"), std::string::npos);
  EXPECT_NE(msg.find("Formula 1"), std::string::npos);
}

TEST(AuditFlow, StaleValueVectorFires) {
  const core::AgreementGraph g = two_principal_graph();
  core::AccessLevels levels = core::compute_access_levels(g);
  levels.mandatory_value[0] += 7.0;  // as if capacities changed underneath
  const std::string msg = violation_message(
      [&] { audit::audit_access_levels(g, levels, true); });
  EXPECT_NE(msg.find("flow.mandatory-value-conservation"), std::string::npos);
  EXPECT_NE(msg.find("recomputed"), std::string::npos)
      << "hints at the likely cause: " << msg;
}

TEST(AuditFlow, BrokenAccessLevelSplitFires) {
  const core::AgreementGraph g = two_principal_graph();
  core::AccessLevels levels = core::compute_access_levels(g);
  levels.mandatory_capacity[1] += 3.0;  // MC no longer M (1 - L)
  const std::string msg = violation_message(
      [&] { audit::audit_access_levels(g, levels, true); });
  EXPECT_NE(msg.find("flow.access-level-split"), std::string::npos);
}

TEST(AuditFlow, EntitlementRowDriftFires) {
  const core::AgreementGraph g = two_principal_graph();
  core::AccessLevels levels = core::compute_access_levels(g);
  levels.mandatory_entitlement(0, 1) += 2.0;  // row sum != MC_0
  const std::string msg = violation_message(
      [&] { audit::audit_access_levels(g, levels, true); });
  EXPECT_NE(msg.find("flow.entitlement-row-sum"), std::string::npos);
  EXPECT_NE(msg.find("DESIGN.md D1"), std::string::npos);
}

TEST(AuditFlow, BrokenCapacityPartitionFires) {
  const core::AgreementGraph g = two_principal_graph();
  core::AccessLevels levels = core::compute_access_levels(g);
  // Shift entitlement between servers within a row: row sums (and therefore
  // MC) stay intact, but server B's column no longer partitions V_B.
  levels.mandatory_entitlement(0, 0) += 5.0;
  levels.mandatory_entitlement(0, 1) -= 5.0;
  const std::string msg = violation_message(
      [&] { audit::audit_access_levels(g, levels, true); });
  EXPECT_NE(msg.find("flow.entitlement-partition"), std::string::npos);
  EXPECT_NE(msg.find("capacity"), std::string::npos);
}

TEST(AuditFlow, CyclicGraphSkipsPartitionCheckOnly) {
  core::AgreementGraph g;
  g.add_principal("A", 100.0);
  g.add_principal("B", 100.0);
  g.set_agreement(0, 1, 0.3, 0.6);
  g.set_agreement(1, 0, 0.3, 0.6);  // A <-> B: a cycle
  EXPECT_TRUE(core::has_agreement_cycle(g));
  const core::AccessLevels levels = core::compute_access_levels(g);
  EXPECT_NO_THROW(audit::audit_access_levels(
      g, levels, /*expect_exact_partition=*/false));
}

TEST(AuditFlow, CycleDetectionOnChainsAndBranches) {
  core::AgreementGraph chain;
  chain.add_principal("A", 1.0);
  chain.add_principal("B", 1.0);
  chain.add_principal("C", 1.0);
  chain.set_agreement(0, 1, 0.1, 0.5);
  chain.set_agreement(1, 2, 0.1, 0.5);
  EXPECT_FALSE(core::has_agreement_cycle(chain));
  chain.set_agreement(2, 0, 0.1, 0.5);  // close the loop
  EXPECT_TRUE(core::has_agreement_cycle(chain));
}

// ---------------------------------------------------------------------------
// lp/simplex
// ---------------------------------------------------------------------------

lp::Problem small_lp() {
  lp::Problem p(2, lp::Sense::kMaximize);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, lp::Relation::kLessEq, 5.0);
  p.add_constraint({{0, 1.0}}, lp::Relation::kGreaterEq, 1.0);
  return p;
}

TEST(AuditLp, HonestSolutionPasses) {
  const lp::Problem p = small_lp();
  const lp::Solution s = lp::solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NO_THROW(audit::audit_lp_solution(p, s, 1e-6));
}

TEST(AuditLp, InfeasiblePointReportedOptimalFires) {
  const lp::Problem p = small_lp();
  lp::Solution s = lp::solve(p);
  ASSERT_TRUE(s.optimal());
  s.values[1] += 10.0;  // blows through the <= 5 row
  const std::string msg =
      violation_message([&] { audit::audit_lp_solution(p, s, 1e-6); });
  EXPECT_NE(msg.find("[audit] lp.primal-feasibility"), std::string::npos);
  EXPECT_NE(msg.find("constraint #0"), std::string::npos);
}

TEST(AuditLp, BoundViolationFires) {
  const lp::Problem p = small_lp();
  lp::Solution s = lp::solve(p);
  ASSERT_TRUE(s.optimal());
  s.values[1] = -2.0;
  const std::string msg =
      violation_message([&] { audit::audit_lp_solution(p, s, 1e-6); });
  EXPECT_NE(msg.find("lp.variable-bounds"), std::string::npos);
}

TEST(AuditLp, ObjectiveBookkeepingDriftFires) {
  const lp::Problem p = small_lp();
  lp::Solution s = lp::solve(p);
  ASSERT_TRUE(s.optimal());
  s.objective += 1.0;
  const std::string msg =
      violation_message([&] { audit::audit_lp_solution(p, s, 1e-6); });
  EXPECT_NE(msg.find("lp.objective-consistency"), std::string::npos);
}

TEST(AuditLp, NonOptimalSolutionsAreNotAudited) {
  lp::Problem p(1, lp::Sense::kMaximize);
  p.set_objective(0, 1.0);  // unbounded above
  const lp::Solution s = lp::solve(p);
  ASSERT_EQ(s.status, lp::Status::kUnbounded);
  EXPECT_NO_THROW(audit::audit_lp_solution(p, s, 1e-6));
}

TEST(AuditSimplex, ProperBasisPasses) {
  Matrix a(2, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(0, 2) = 4.0;
  a(1, 2) = 2.0;
  EXPECT_NO_THROW(
      audit::audit_simplex_basis(a, {3.0, 1.0}, {0, 1}, {}, /*tol=*/1e-9));
}

TEST(AuditSimplex, NonUnitBasisColumnFires) {
  Matrix a(2, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(0, 1) = 0.5;  // column 1 is basic in row 1 but not eliminated in row 0
  const std::string msg = violation_message(
      [&] { audit::audit_simplex_basis(a, {3.0, 1.0}, {0, 1}, {}, 1e-9); });
  EXPECT_NE(msg.find("simplex.basis-not-unit"), std::string::npos);
  EXPECT_NE(msg.find("pivot"), std::string::npos);
}

TEST(AuditSimplex, NegativeRhsFires) {
  Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const std::string msg = violation_message(
      [&] { audit::audit_simplex_basis(a, {-1.0, 2.0}, {0, 1}, {}, 1e-9); });
  EXPECT_NE(msg.find("simplex.primal-infeasible-rhs"), std::string::npos);
}

TEST(AuditSimplex, BasicValueWithinBothBoundsPasses) {
  Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const std::vector<double> upper = {5.0,
                                     std::numeric_limits<double>::infinity()};
  EXPECT_NO_THROW(
      audit::audit_simplex_basis(a, {5.0, 100.0}, {0, 1}, upper, 1e-9));
}

TEST(AuditSimplex, BasicValueAboveUpperBoundFires) {
  Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const std::vector<double> upper = {5.0,
                                     std::numeric_limits<double>::infinity()};
  const std::string msg = violation_message(
      [&] { audit::audit_simplex_basis(a, {6.0, 2.0}, {0, 1}, upper, 1e-9); });
  EXPECT_NE(msg.find("simplex.primal-above-upper"), std::string::npos);
  EXPECT_NE(msg.find("ratio test"), std::string::npos);
}

TEST(AuditSimplex, ConsistentSolveStatsPass) {
  lp::SolveStats s;
  s.solves = 10;
  s.warm_solves = 7;
  s.cold_solves = 3;
  s.structure_misses = 1;
  s.refreshes = 1;
  s.rhs_rejections = 1;
  EXPECT_NO_THROW(audit::audit_solve_stats(s));
}

TEST(AuditSimplex, SolveSplitMismatchFires) {
  lp::SolveStats s;
  s.solves = 10;
  s.warm_solves = 7;
  s.cold_solves = 2;  // one solve vanished
  const std::string msg =
      violation_message([&] { audit::audit_solve_stats(s); });
  EXPECT_NE(msg.find("lp.stats-solve-split"), std::string::npos);
}

TEST(AuditSimplex, DoubleCountedColdCauseFires) {
  lp::SolveStats s;
  s.solves = 10;
  s.warm_solves = 8;
  s.cold_solves = 2;
  // One failed warm attempt booked under two causes: 3 causes, 2 colds.
  s.structure_misses = 2;
  s.rhs_rejections = 1;
  const std::string msg =
      violation_message([&] { audit::audit_solve_stats(s); });
  EXPECT_NE(msg.find("lp.stats-cold-causes"), std::string::npos);
  EXPECT_NE(msg.find("two causes"), std::string::npos);
}

TEST(AuditSimplex, BlandRegressionFires) {
  EXPECT_NO_THROW(audit::audit_bland_progress(10.0, 10.0, 1e-9));
  EXPECT_NO_THROW(audit::audit_bland_progress(10.0, 10.5, 1e-9));
  const std::string msg =
      violation_message([&] { audit::audit_bland_progress(10.0, 9.0, 1e-9); });
  EXPECT_NE(msg.find("simplex.bland-regress"), std::string::npos);
  EXPECT_NE(msg.find("termination"), std::string::npos);
}

TEST(AuditSimplex, BasicValuesFeasiblePasses) {
  const std::vector<double> rhs = {3.0, 1.0};
  const std::vector<std::size_t> basis = {0, 1};
  const std::vector<double> upper = {
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity()};
  EXPECT_NO_THROW(audit::audit_basic_values(rhs, basis, upper, 1e-9));
}

TEST(AuditSimplex, NegativeBasicValueFires) {
  const std::vector<double> rhs = {3.0, -1.0};
  const std::vector<std::size_t> basis = {0, 1};
  const std::vector<double> upper = {
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity()};
  const std::string msg = violation_message(
      [&] { audit::audit_basic_values(rhs, basis, upper, 1e-9); });
  EXPECT_NE(msg.find("simplex.primal-infeasible-rhs"), std::string::npos);
}

TEST(AuditSimplex, BasicValueAboveUpperFires) {
  const std::vector<double> rhs = {3.0, 1.0};
  const std::vector<std::size_t> basis = {0, 1};
  const std::vector<double> upper = {2.0, 2.0};
  const std::string msg = violation_message(
      [&] { audit::audit_basic_values(rhs, basis, upper, 1e-9); });
  EXPECT_NE(msg.find("simplex.primal-above-upper"), std::string::npos);
}

TEST(AuditSimplex, UnitColumnPasses) {
  EXPECT_NO_THROW(audit::audit_unit_column(1, {0.0, 1.0, 0.0}, 1e-9));
}

TEST(AuditSimplex, NonUnitColumnFires) {
  const std::string msg = violation_message(
      [&] { audit::audit_unit_column(1, {0.5, 1.0, 0.0}, 1e-9); });
  EXPECT_NE(msg.find("simplex.basis-not-unit"), std::string::npos);
}

TEST(AuditSimplex, ReducedCostSyncPasses) {
  const std::vector<double> incremental = {1.0, -2.0, 0.0};
  const std::vector<double> reference = {1.0, -2.0, 1e-15};
  EXPECT_NO_THROW(
      audit::audit_reduced_cost_sync(incremental, reference, 1e-9));
}

TEST(AuditSimplex, ReducedCostDriftFires) {
  const std::vector<double> incremental = {1.0, -2.0, 0.0};
  const std::vector<double> reference = {1.0, -2.5, 0.0};
  const std::string msg = violation_message(
      [&] { audit::audit_reduced_cost_sync(incremental, reference, 1e-9); });
  EXPECT_NE(msg.find("simplex.reduced-cost-drift"), std::string::npos);
}

TEST(AuditSimplex, ReducedCostShapeFires) {
  const std::vector<double> incremental = {1.0, -2.0};
  const std::vector<double> reference = {1.0, -2.0, 0.0};
  const std::string msg = violation_message(
      [&] { audit::audit_reduced_cost_sync(incremental, reference, 1e-9); });
  EXPECT_NE(msg.find("simplex.reduced-cost-shape"), std::string::npos);
}

TEST(AuditSimplex, NoArtificialBasicPasses) {
  const std::vector<std::size_t> basis = {0, 3, 4};
  EXPECT_NO_THROW(audit::audit_no_artificial_basic(basis, 5));
}

TEST(AuditSimplex, ArtificialBasicFires) {
  const std::vector<std::size_t> basis = {0, 6, 4};
  const std::string msg = violation_message(
      [&] { audit::audit_no_artificial_basic(basis, 5); });
  EXPECT_NE(msg.find("simplex.warm-artificial-basic"), std::string::npos);
}

TEST(AuditSimplex, EtaConsistencyPasses) {
  const std::vector<double> eta_values = {4.0, 2.0, 0.5};
  const std::vector<double> fresh_values = {4.0, 2.0, 0.5 + 1e-12};
  EXPECT_NO_THROW(
      audit::audit_eta_consistency(eta_values, fresh_values, 1e-6));
}

TEST(AuditSimplex, EtaDriftFires) {
  const std::vector<double> eta_values = {4.0, 2.0, 0.5};
  const std::vector<double> fresh_values = {4.0, 2.1, 0.5};
  const std::string msg = violation_message(
      [&] { audit::audit_eta_consistency(eta_values, fresh_values, 1e-6); });
  EXPECT_NE(msg.find("simplex.eta-rhs-drift"), std::string::npos);
}

TEST(AuditSimplex, EtaShapeFires) {
  const std::vector<double> eta_values = {4.0, 2.0};
  const std::vector<double> fresh_values = {4.0, 2.0, 0.5};
  const std::string msg = violation_message(
      [&] { audit::audit_eta_consistency(eta_values, fresh_values, 1e-6); });
  EXPECT_NE(msg.find("simplex.eta-rhs-shape"), std::string::npos);
}

// ---------------------------------------------------------------------------
// sched/window_scheduler
// ---------------------------------------------------------------------------

TEST(AuditWindow, ConservedStatePasses) {
  const Matrix quota(1, 1, 2.0);
  const Matrix consumed(1, 1, 1.0);
  const Matrix debt(1, 1, 0.0);
  const Matrix slices(1, 1, 3.0);
  EXPECT_NO_THROW(
      audit::audit_window_conservation(quota, consumed, debt, slices, 1e-9));
}

TEST(AuditWindow, LeakedQuotaFires) {
  const Matrix quota(1, 1, 2.5);  // 2.5 + 1.0 != 3.0 + 0.0
  const Matrix consumed(1, 1, 1.0);
  const Matrix debt(1, 1, 0.0);
  const Matrix slices(1, 1, 3.0);
  const std::string msg = violation_message([&] {
    audit::audit_window_conservation(quota, consumed, debt, slices, 1e-9);
  });
  EXPECT_NE(msg.find("window.quota-conservation"), std::string::npos);
  EXPECT_NE(msg.find("DESIGN.md D5"), std::string::npos);
}

TEST(AuditWindow, NegativeConsumptionFires) {
  const Matrix quota(1, 1, 3.5);
  const Matrix consumed(1, 1, -0.5);
  const Matrix debt(1, 1, 0.0);
  const Matrix slices(1, 1, 3.0);
  const std::string msg = violation_message([&] {
    audit::audit_window_conservation(quota, consumed, debt, slices, 1e-9);
  });
  EXPECT_NE(msg.find("window.negative-consumption"), std::string::npos);
}

TEST(AuditWindow, PositiveDebtCarryFires) {
  const Matrix quota(1, 1, 3.5);
  const Matrix consumed(1, 1, 0.0);
  const Matrix debt(1, 1, 0.5);  // stacking unused quota across windows
  const Matrix slices(1, 1, 3.0);
  const std::string msg = violation_message([&] {
    audit::audit_window_conservation(quota, consumed, debt, slices, 1e-9);
  });
  EXPECT_NE(msg.find("window.positive-debt"), std::string::npos);
}

TEST(AuditWindow, CarryRange) {
  EXPECT_NO_THROW(audit::audit_quota_carry(0.0));
  EXPECT_NO_THROW(audit::audit_quota_carry(0.999));
  EXPECT_NE(violation_message([] { audit::audit_quota_carry(1.5); })
                .find("window.carry-range"),
            std::string::npos);
  EXPECT_NE(violation_message([] { audit::audit_quota_carry(-0.1); })
                .find("window.carry-range"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// l4/connection_table
// ---------------------------------------------------------------------------

using FlowMap = std::map<std::pair<l4::Endpoint, l4::Endpoint>, l4::Endpoint>;

TEST(AuditL4, ConsistentTablePasses) {
  const l4::Endpoint client{1, 4000}, vip{9, 80}, server{2, 8080};
  FlowMap table{{{client, vip}, server}};
  FlowMap affinity = table;
  EXPECT_NO_THROW(audit::audit_connection_table(table, affinity));
}

TEST(AuditL4, OrphanedNatEntryFires) {
  const l4::Endpoint client{1, 4000}, vip{9, 80}, server{2, 8080};
  FlowMap table{{{client, vip}, server}};
  const FlowMap affinity;  // hint lost
  const std::string msg = violation_message(
      [&] { audit::audit_connection_table(table, affinity); });
  EXPECT_NE(msg.find("l4.orphaned-nat-entry"), std::string::npos);
  EXPECT_NE(msg.find("establish()"), std::string::npos);
}

TEST(AuditL4, AffinityMismatchFires) {
  const l4::Endpoint client{1, 4000}, vip{9, 80};
  const l4::Endpoint server_a{2, 8080}, server_b{3, 8080};
  FlowMap table{{{client, vip}, server_a}};
  FlowMap affinity{{{client, vip}, server_b}};
  const std::string msg = violation_message(
      [&] { audit::audit_connection_table(table, affinity); });
  EXPECT_NE(msg.find("l4.affinity-mismatch"), std::string::npos);
}

// An affinity hint with no live flow is fine: hints deliberately outlive
// connections so new connections from the same client prefer the old server.
TEST(AuditL4, DanglingHintWithoutFlowIsAllowed) {
  const l4::Endpoint client{1, 4000}, vip{9, 80}, server{2, 8080};
  const FlowMap table;
  FlowMap affinity{{{client, vip}, server}};
  EXPECT_NO_THROW(audit::audit_connection_table(table, affinity));
}

}  // namespace
}  // namespace sharegrid
