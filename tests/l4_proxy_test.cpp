// Tests for the live user-space L4-style proxy: connection-level admission
// and protocol-agnostic byte relaying over loopback TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "live/l4_proxy.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"

namespace sharegrid::live {
namespace {

/// Echo backend: prefixes every received blob with "echo:".
class EchoBackend {
 public:
  EchoBackend() : listener_(net::Socket::listen_on_loopback()) {
    thread_ = std::thread([this] { loop(); });
  }
  ~EchoBackend() {
    running_.store(false);
    try {
      net::Socket::connect_loopback(port());
    } catch (const ContractViolation&) {
    }
    thread_.join();
  }
  std::uint16_t port() const { return listener_.local_port(); }

 private:
  void loop() {
    while (running_.load()) {
      try {
        net::Socket conn = listener_.accept();
        if (!running_.load()) break;
        while (true) {
          const std::string got = conn.read_some().data;
          if (got.empty()) break;
          conn.write_all("echo:" + got);
        }
      } catch (const ContractViolation&) {
      }
    }
  }

  net::Socket listener_;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

TEST(L4Proxy, RelaysBytesBothWaysUnparsed) {
  EchoBackend backend;
  test::FixedRateScheduler scheduler({1000.0});
  L4Proxy::Config config;
  config.services = {{0, backend.port(), 0}};
  L4Proxy proxy(&scheduler, config);
  proxy.start();

  net::Socket client = net::Socket::connect_loopback(proxy.service_port(0));
  client.write_all("arbitrary \x01 bytes, not HTTP");
  const std::string reply = client.read_some().data;
  EXPECT_EQ(reply, "echo:arbitrary \x01 bytes, not HTTP");

  // Same connection again: affinity means it stays on the same backend.
  client.write_all("second");
  EXPECT_EQ(client.read_some().data, "echo:second");

  client.close();
  proxy.stop();
  EXPECT_EQ(proxy.admitted(), 1u);  // one connection, many messages
  EXPECT_EQ(proxy.refused(), 0u);
}

TEST(L4Proxy, RefusesConnectionsBeyondQuota) {
  EchoBackend backend;
  // 10 req/s => one connection per 100 ms window.
  test::FixedRateScheduler scheduler({10.0});
  L4Proxy::Config config;
  config.services = {{0, backend.port(), 0}};
  L4Proxy proxy(&scheduler, config);
  proxy.start();

  net::Socket first = net::Socket::connect_loopback(proxy.service_port(0));
  first.write_all("a");
  EXPECT_EQ(first.read_some().data, "echo:a");  // admitted

  // The second immediate connection is refused: the proxy closes it, so the
  // first read returns empty.
  net::Socket second = net::Socket::connect_loopback(proxy.service_port(0));
  const std::string nothing = second.read_some().data;
  EXPECT_TRUE(nothing.empty());

  first.close();
  second.close();
  proxy.stop();
  EXPECT_EQ(proxy.admitted(), 1u);
  EXPECT_EQ(proxy.refused(), 1u);
}

TEST(L4Proxy, MultipleServicesMapPortsToPrincipals) {
  EchoBackend backend_a;
  EchoBackend backend_b;
  // Principal 0 has generous quota, principal 1 none at all.
  test::FixedRateScheduler scheduler({1000.0, 0.0});
  L4Proxy::Config config;
  config.services = {{0, backend_a.port(), 0}, {1, backend_b.port(), 1}};
  L4Proxy proxy(&scheduler, config);
  proxy.start();

  net::Socket ok = net::Socket::connect_loopback(proxy.service_port(0));
  ok.write_all("hi");
  EXPECT_EQ(ok.read_some().data, "echo:hi");

  net::Socket denied = net::Socket::connect_loopback(proxy.service_port(1));
  EXPECT_TRUE(denied.read_some().data.empty());

  ok.close();
  denied.close();
  proxy.stop();
  EXPECT_EQ(proxy.admitted(), 1u);
  EXPECT_EQ(proxy.refused(), 1u);
}

TEST(L4Proxy, ValidatesConfig) {
  test::FixedRateScheduler scheduler({10.0});
  L4Proxy::Config empty;
  EXPECT_THROW(L4Proxy(&scheduler, empty), ContractViolation);

  L4Proxy::Config bad_principal;
  bad_principal.services = {{7, 1234, 0}};
  EXPECT_THROW(L4Proxy(&scheduler, bad_principal), ContractViolation);
}

}  // namespace
}  // namespace sharegrid::live
