// Unit tests for the WebBench-like workload model.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workload/activity_plan.hpp"
#include "workload/reply_size.hpp"

namespace sharegrid::workload {
namespace {

TEST(BoundedParetoMean, MatchesClosedForm) {
  // alpha = 2 on [1, 2]: E = (l^a/(1-(l/h)^a)) * a/(a-1) * (1/l - 1/h)
  //       = (1/(1-1/4)) * 2 * (1 - 1/2) = 4/3.
  EXPECT_NEAR(bounded_pareto_mean(1.0, 2.0, 2.0), 4.0 / 3.0, 1e-9);
}

TEST(SolveParetoAlpha, RecoversRequestedMean) {
  const double alpha = solve_pareto_alpha(200.0, 512000.0, 6144.0);
  EXPECT_NEAR(bounded_pareto_mean(200.0, 512000.0, alpha), 6144.0, 1.0);
  EXPECT_GT(alpha, 0.5);
  EXPECT_LT(alpha, 2.0);  // heavy-tailed, as web traffic should be
}

TEST(SolveParetoAlpha, RejectsImpossibleMeans) {
  EXPECT_THROW(solve_pareto_alpha(200.0, 500.0, 100.0), ContractViolation);
  EXPECT_THROW(solve_pareto_alpha(200.0, 500.0, 600.0), ContractViolation);
}

TEST(ReplySizeDistribution, EmpiricalMeanApproachesSpec) {
  const ReplySizeDistribution dist;  // paper defaults: 200 B..500 KB, 6 KB
  Rng rng(1234);
  double total = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) total += dist.sample(rng).reply_bytes;
  EXPECT_NEAR(total / samples, 6144.0, 250.0);
}

TEST(ReplySizeDistribution, SizesStayInRange) {
  const ReplySizeDistribution dist;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_GE(s.reply_bytes, 200.0 - 1e-9);
    EXPECT_LE(s.reply_bytes, 500.0 * 1024.0 + 1e-6);
    EXPECT_GE(s.weight, 0.1);
  }
}

TEST(ReplySizeDistribution, DynamicFractionIsRespected) {
  ReplySizeSpec spec;
  spec.dynamic_fraction = 0.3;
  const ReplySizeDistribution dist(spec);
  Rng rng(9);
  int dynamic = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i)
    dynamic += dist.sample(rng).request_class == RequestClass::kDynamic;
  EXPECT_NEAR(static_cast<double>(dynamic) / samples, 0.3, 0.02);
}

TEST(ReplySizeDistribution, WeightIsSizeRelativeToMean) {
  const ReplySizeDistribution dist;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto s = dist.sample(rng);
    if (s.reply_bytes > 614.4) {  // above the 0.1 weight clamp
      EXPECT_NEAR(s.weight, s.reply_bytes / 6144.0, 1e-9);
    }
  }
}

TEST(ActivityPlan, IntervalsAndQueries) {
  ActivityPlan plan(2);
  plan.add_interval(0, seconds(0), seconds(10));
  plan.add_interval(0, seconds(20), seconds(30));
  plan.always_active(1, seconds(30));

  EXPECT_TRUE(plan.active_at(0, seconds(5)));
  EXPECT_FALSE(plan.active_at(0, seconds(15)));
  EXPECT_TRUE(plan.active_at(0, seconds(25)));
  EXPECT_FALSE(plan.active_at(0, seconds(30)));  // half-open
  EXPECT_TRUE(plan.active_at(1, seconds(29)));
  EXPECT_EQ(plan.horizon(), seconds(30));
}

TEST(ActivityPlan, RejectsOverlapsAndDisorder) {
  ActivityPlan plan(1);
  plan.add_interval(0, seconds(10), seconds(20));
  EXPECT_THROW(plan.add_interval(0, seconds(15), seconds(25)),
               ContractViolation);
  EXPECT_THROW(plan.add_interval(0, seconds(5), seconds(8)),
               ContractViolation);
  EXPECT_THROW(plan.add_interval(0, seconds(30), seconds(30)),
               ContractViolation);
  EXPECT_THROW(plan.add_interval(5, 0, seconds(1)), ContractViolation);
}

TEST(ActivityPlan, PhasesTrackHorizon) {
  ActivityPlan plan(1);
  plan.add_interval(0, 0, seconds(10));
  plan.add_phase("warm", 0, seconds(5));
  plan.add_phase("steady", seconds(5), seconds(15));
  EXPECT_THROW(plan.add_phase("bad", seconds(10), seconds(12)),
               ContractViolation);
  EXPECT_EQ(plan.phases().size(), 2u);
  EXPECT_EQ(plan.horizon(), seconds(15));
}

}  // namespace
}  // namespace sharegrid::workload
