// Unit tests for tree topologies and the combining-tree / pairwise-exchange
// aggregation strategies.
#include <gtest/gtest.h>

#include <vector>

#include "coord/combining_tree.hpp"
#include "coord/topology.hpp"
#include "sim/simulator.hpp"

namespace sharegrid::coord {
namespace {

TEST(TreeTopology, StarShape) {
  const TreeTopology t = TreeTopology::star(5);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.depth(), 1u);
  EXPECT_EQ(t.children()[0].size(), 4u);
}

TEST(TreeTopology, ChainShape) {
  const TreeTopology t = TreeTopology::chain(4);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.depth(), 3u);
  EXPECT_EQ(t.children()[2], (std::vector<std::size_t>{3}));
}

TEST(TreeTopology, BalancedShape) {
  const TreeTopology t = TreeTopology::balanced(7, 2);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.depth(), 2u);
  EXPECT_EQ(t.children()[0], (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(t.children()[1], (std::vector<std::size_t>{3, 4}));
}

TEST(TreeTopology, DetectsInvalidShapes) {
  TreeTopology two_roots;
  two_roots.parent = {kNoParent, kNoParent};
  EXPECT_FALSE(two_roots.valid());

  TreeTopology cycle;
  cycle.parent = {1, 0};
  EXPECT_FALSE(cycle.valid());

  TreeTopology out_of_range;
  out_of_range.parent = {kNoParent, 7};
  EXPECT_FALSE(out_of_range.valid());

  EXPECT_FALSE(TreeTopology{}.valid());
}

TEST(TreeTopology, SingleNode) {
  const TreeTopology t = TreeTopology::star(1);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.depth(), 0u);
}

// --- CombiningTree ---------------------------------------------------------

struct Participant {
  std::vector<double> local;
  std::vector<std::vector<double>> received;
  std::vector<SimTime> received_at;
};

/// Wires `n` participants into tree leaves (node 0 is a pure interior root
/// when `skip_root` is set).
void attach_all(CombiningTree& tree, sim::Simulator& sim,
                std::vector<Participant>& parts, std::size_t first_node) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    Participant* p = &parts[i];
    tree.attach(
        first_node + i, [p] { return p->local; },
        [p, &sim](std::uint64_t, const std::vector<double>& agg) {
          p->received.push_back(agg);
          p->received_at.push_back(sim.now());
        });
  }
}

TEST(CombiningTree, AggregatesElementwiseSums) {
  sim::Simulator sim;
  TreeConfig cfg{.period = 100, .link_delay = 0, .vector_size = 2};
  CombiningTree tree(&sim, TreeTopology::star(4), cfg);
  std::vector<Participant> parts(3);
  parts[0].local = {1.0, 10.0};
  parts[1].local = {2.0, 20.0};
  parts[2].local = {3.0, 30.0};
  attach_all(tree, sim, parts, 1);

  tree.start(0);
  sim.run_until(50);
  for (const auto& p : parts) {
    ASSERT_EQ(p.received.size(), 1u);
    EXPECT_DOUBLE_EQ(p.received[0][0], 6.0);
    EXPECT_DOUBLE_EQ(p.received[0][1], 60.0);
  }
}

TEST(CombiningTree, UsesTwoNMinusOneMessagesPerRound) {
  sim::Simulator sim;
  TreeConfig cfg{.period = 100, .link_delay = 1, .vector_size = 1};
  const std::size_t n = 8;
  CombiningTree tree(&sim, TreeTopology::balanced(n, 2), cfg);
  std::vector<Participant> parts(n);
  for (auto& p : parts) p.local = {1.0};
  attach_all(tree, sim, parts, 0);

  tree.start(0);
  sim.run_until(99);  // exactly one round
  EXPECT_EQ(tree.rounds_completed(), 1u);
  EXPECT_EQ(tree.messages_sent(), 2 * (n - 1));
}

TEST(CombiningTree, LinkDelayLagsDelivery) {
  sim::Simulator sim;
  // Two leaves under a root, 5 time-unit links: aggregate reaches leaves
  // at round_start + 2 * 5.
  TreeConfig cfg{.period = 1000, .link_delay = 5, .vector_size = 1};
  CombiningTree tree(&sim, TreeTopology::star(3), cfg);
  std::vector<Participant> parts(2);
  parts[0].local = {4.0};
  parts[1].local = {8.0};
  attach_all(tree, sim, parts, 1);

  tree.start(100);
  sim.run_until(200);
  ASSERT_EQ(parts[0].received.size(), 1u);
  EXPECT_EQ(parts[0].received_at[0], 110);
  EXPECT_DOUBLE_EQ(parts[0].received[0][0], 12.0);
}

TEST(CombiningTree, OverlappingRoundsStayConsistent) {
  sim::Simulator sim;
  // Lag (2 * 4 = 8... depth 2 chain) exceeds the period: several rounds in
  // flight at once must not mix their sums.
  TreeConfig cfg{.period = 3, .link_delay = 4, .vector_size = 1};
  CombiningTree tree(&sim, TreeTopology::chain(3), cfg);
  std::vector<Participant> parts(3);
  for (auto& p : parts) p.local = {1.0};
  attach_all(tree, sim, parts, 0);

  tree.start(0);
  sim.run_until(100);
  ASSERT_GE(parts[2].received.size(), 5u);
  for (const auto& agg : parts[2].received) EXPECT_DOUBLE_EQ(agg[0], 3.0);
}

TEST(CombiningTree, InteriorNodesMayHaveNoProvider) {
  sim::Simulator sim;
  TreeConfig cfg{.period = 100, .link_delay = 0, .vector_size = 1};
  CombiningTree tree(&sim, TreeTopology::star(3), cfg);
  std::vector<Participant> parts(2);
  parts[0].local = {5.0};
  parts[1].local = {7.0};
  attach_all(tree, sim, parts, 1);  // root contributes nothing

  tree.start(0);
  sim.run_until(10);
  ASSERT_EQ(parts[1].received.size(), 1u);
  EXPECT_DOUBLE_EQ(parts[1].received[0][0], 12.0);
}

TEST(CombiningTree, StopHaltsRounds) {
  sim::Simulator sim;
  TreeConfig cfg{.period = 10, .link_delay = 0, .vector_size = 1};
  CombiningTree tree(&sim, TreeTopology::star(2), cfg);
  std::vector<Participant> parts(1);
  parts[0].local = {1.0};
  attach_all(tree, sim, parts, 1);

  tree.start(0);
  sim.run_until(25);
  tree.stop();
  const auto rounds = tree.rounds_completed();
  sim.run_until(200);
  EXPECT_EQ(tree.rounds_completed(), rounds);
}

TEST(CombiningTree, FailedNodeStallsAggregation) {
  sim::Simulator sim;
  TreeConfig cfg{.period = 10, .link_delay = 0, .vector_size = 1};
  CombiningTree tree(&sim, TreeTopology::star(3), cfg);
  std::vector<Participant> parts(2);
  parts[0].local = {1.0};
  parts[1].local = {2.0};
  attach_all(tree, sim, parts, 1);

  tree.start(0);
  sim.run_until(25);  // rounds at 0, 10, 20 complete
  EXPECT_EQ(parts[0].received.size(), 3u);

  // Leaf 2 (tree node 2) fails: no further round can complete, because the
  // root waits on all children; consumers keep their last snapshot.
  tree.set_node_failed(2, true);
  sim.run_until(85);
  EXPECT_EQ(parts[0].received.size(), 3u);
  EXPECT_GE(tree.rounds_abandoned(), 5u);

  // Recovery: rounds resume and deliver fresh sums.
  tree.set_node_failed(2, false);
  sim.run_until(120);
  EXPECT_GT(parts[0].received.size(), 3u);
  EXPECT_DOUBLE_EQ(parts[0].received.back()[0], 3.0);
}

TEST(CombiningTree, RootFailureStallsEverything) {
  sim::Simulator sim;
  TreeConfig cfg{.period = 10, .link_delay = 0, .vector_size = 1};
  CombiningTree tree(&sim, TreeTopology::star(3), cfg);
  std::vector<Participant> parts(2);
  parts[0].local = {1.0};
  parts[1].local = {2.0};
  attach_all(tree, sim, parts, 1);

  tree.set_node_failed(0, true);  // the root itself
  tree.start(0);
  sim.run_until(100);
  EXPECT_TRUE(parts[0].received.empty());
  EXPECT_TRUE(parts[1].received.empty());
  EXPECT_EQ(tree.rounds_completed(), 0u);
  EXPECT_TRUE(tree.node_failed(0));
}

// --- PairwiseExchange --------------------------------------------------------

TEST(PairwiseExchange, DeliversSumsWithQuadraticMessages) {
  sim::Simulator sim;
  TreeConfig cfg{.period = 100, .link_delay = 2, .vector_size = 1};
  const std::size_t n = 6;
  PairwiseExchange exchange(&sim, n, cfg);
  std::vector<Participant> parts(n);
  for (std::size_t i = 0; i < n; ++i) {
    parts[i].local = {static_cast<double>(i + 1)};
    Participant* p = &parts[i];
    exchange.attach(
        i, [p] { return p->local; },
        [p](std::uint64_t, const std::vector<double>& agg) {
          p->received.push_back(agg);
        });
  }

  exchange.start(0);
  sim.run_until(50);
  for (const auto& p : parts) {
    ASSERT_EQ(p.received.size(), 1u);
    EXPECT_DOUBLE_EQ(p.received[0][0], 21.0);  // 1+2+...+6
  }
  EXPECT_EQ(exchange.messages_sent(), n * (n - 1));
}

TEST(PairwiseExchange, MessageCountDominatesCombiningTree) {
  // The paper's scalability claim: 2(n-1) vs n(n-1) messages per round.
  for (std::size_t n : {4u, 8u, 16u}) {
    EXPECT_LT(2 * (n - 1), n * (n - 1));
  }
}

}  // namespace
}  // namespace sharegrid::coord
