// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace sharegrid::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(200, [&] { ++fired; });
  sim.schedule_at(300, [&] { ++fired; });
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
  sim.run_until(500);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 90);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run_until(100);
  EXPECT_THROW(sim.schedule_at(50, [] {}), ContractViolation);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), ContractViolation);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 42; ++i) sim.schedule_at(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_processed(), 42u);
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(&sim, 100, 50, [&] { fires.push_back(sim.now()); });
  sim.run_until(300);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 150, 200, 250, 300}));
}

TEST(PeriodicTask, CancelStopsFutureFirings) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, 0, 10, [&] { ++fired; });
  sim.run_until(35);
  task.cancel();
  sim.run_until(100);
  EXPECT_EQ(fired, 4);  // t = 0, 10, 20, 30
}

TEST(PeriodicTask, DestructionIsSafeWithPendingEvents) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTask task(&sim, 0, 10, [&] { ++fired; });
    sim.run_until(15);
  }  // destroyed; its queued event must be inert
  sim.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTask, BodyCanCancelItself) {
  Simulator sim;
  int fired = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(&sim, 0, 10, [&] {
    if (++fired == 3) handle->cancel();
  });
  handle = &task;
  sim.run_all();
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace sharegrid::sim
