// Unit tests for the HTTP message model used by the Layer-7 redirector.
#include <gtest/gtest.h>

#include "http/message.hpp"

namespace sharegrid::http {
namespace {

TEST(HttpRequest, SerializeParseRoundTrip) {
  Request req;
  req.method = "GET";
  req.target = "/org/acme/index.html";
  req.headers["host"] = "redirector.example";
  req.headers["user-agent"] = "webbench/4.1";

  const auto parsed = parse_request(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/org/acme/index.html");
  EXPECT_EQ(parsed->headers.at("host"), "redirector.example");
  EXPECT_EQ(parsed->headers.at("user-agent"), "webbench/4.1");
}

TEST(HttpRequest, HeaderNamesAreCaseInsensitive) {
  const auto parsed = parse_request(
      "GET / HTTP/1.1\r\nHoSt: example\r\nX-CUSTOM:  padded value \r\n\r\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers.at("host"), "example");
  EXPECT_EQ(parsed->headers.at("x-custom"), "padded value");
}

TEST(HttpRequest, ToleratesBareLf) {
  const auto parsed = parse_request("GET /x HTTP/1.0\nhost: h\n\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, "HTTP/1.0");
}

TEST(HttpRequest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("GET /x HTTP/1.1\r\n").has_value());  // no blank
  EXPECT_FALSE(parse_request("GET\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET /x HTTP/1.1 extra\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET x-no-slash HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET / FTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").has_value());
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\n: empty-name\r\n\r\n").has_value());
}

TEST(HttpResponse, SerializeParseRoundTrip) {
  Response resp;
  resp.status = 200;
  resp.reason = "OK";
  resp.headers["content-length"] = "6144";

  const auto parsed = parse_response(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->reason, "OK");
  EXPECT_EQ(parsed->headers.at("content-length"), "6144");
}

TEST(HttpResponse, RejectsMalformedStatus) {
  EXPECT_FALSE(parse_response("HTTP/1.1 abc OK\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 99 Low\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 600 High\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("NOPE 200 OK\r\n\r\n").has_value());
}

TEST(PrincipalFromTarget, ExtractsOrganization) {
  EXPECT_EQ(principal_from_target("/org/acme/a/b.html").value(), "acme");
  EXPECT_EQ(principal_from_target("/org/acme").value(), "acme");
  EXPECT_FALSE(principal_from_target("/other/acme").has_value());
  EXPECT_FALSE(principal_from_target("/org/").has_value());
  EXPECT_FALSE(principal_from_target("").has_value());
}

TEST(Redirects, ServerRedirectCarriesAssignedHost) {
  Request req;
  req.target = "/org/acme/page";
  const Response r = make_server_redirect(req, "server3.cluster");
  EXPECT_EQ(r.status, 302);
  EXPECT_EQ(r.headers.at("location"), "http://server3.cluster/org/acme/page");

  // Round-trip through the wire format.
  const auto parsed = parse_response(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 302);
  EXPECT_EQ(parsed->headers.at("location"),
            "http://server3.cluster/org/acme/page");
}

TEST(Redirects, SelfRedirectPointsBackAtRedirector) {
  Request req;
  req.target = "/org/acme/page";
  const Response r = make_self_redirect(req, "redirector1");
  EXPECT_EQ(r.status, 302);
  EXPECT_EQ(r.headers.at("location"), "http://redirector1/org/acme/page");
}

}  // namespace
}  // namespace sharegrid::http
