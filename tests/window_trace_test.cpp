// Tests for the per-window decision trace.
#include <gtest/gtest.h>

#include <sstream>

#include "experiments/paper_figures.hpp"
#include "experiments/scenario.hpp"
#include "nodes/window_trace.hpp"

namespace sharegrid::nodes {
namespace {

TEST(WindowTrace, RecordsAndCaps) {
  WindowTrace trace(/*max_rows=*/3);
  for (int i = 0; i < 5; ++i) {
    WindowTrace::Row row;
    row.window_start = seconds(i);
    row.redirector = "r0";
    trace.record(std::move(row));
  }
  EXPECT_EQ(trace.rows().size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
}

TEST(WindowTrace, CsvHasOneLinePerRowPlusHeader) {
  WindowTrace trace;
  WindowTrace::Row row;
  row.window_start = seconds(1.5);
  row.redirector = "l7-0";
  row.local_demand = {10.0, 20.0};
  row.global_demand = {30.0, 40.0};
  row.planned_rate = {5.0, 15.0};
  row.theta = 0.5;
  trace.record(row);

  std::ostringstream os;
  trace.write_csv(os, {"A", "B"});
  const std::string csv = os.str();
  EXPECT_NE(csv.find("A_local"), std::string::npos);
  EXPECT_NE(csv.find("B_planned"), std::string::npos);
  EXPECT_NE(csv.find("l7-0"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(WindowTrace, ScenarioPopulatesTrace) {
  experiments::FigureExperiment figure = experiments::figure9();
  figure.config.duration_sec = 10.0;
  figure.config.phases.clear();
  figure.config.trace_windows = true;
  const auto result = experiments::run_scenario(figure.config);

  // One redirector, 100 ms windows over 10 s: ~100 rows.
  EXPECT_NEAR(static_cast<double>(result.window_trace.rows().size()), 100.0,
              3.0);
  const auto& row = result.window_trace.rows().back();
  EXPECT_EQ(row.local_demand.size(), 2u);
  EXPECT_EQ(row.planned_rate.size(), 2u);
  // Under phase-1 load the plan grants A its 480 and B its 160.
  EXPECT_NEAR(row.planned_rate[0], 480.0, 48.0);
  EXPECT_NEAR(row.planned_rate[1], 160.0, 20.0);
}

TEST(WindowTrace, DisabledByDefault) {
  experiments::FigureExperiment figure = experiments::figure9();
  figure.config.duration_sec = 5.0;
  figure.config.phases.clear();
  const auto result = experiments::run_scenario(figure.config);
  EXPECT_TRUE(result.window_trace.rows().empty());
}

}  // namespace
}  // namespace sharegrid::nodes
