// Regression tests for bugs found by the property suites and scaling
// sweeps. Each test pins the exact failure mode so it cannot quietly
// return.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/window_scheduler.hpp"

namespace sharegrid {
namespace {

// Bug 1: the conservative no-snapshot mode used a raw 1e9 demand; theta-row
// coefficients of that size times the solver tolerance left request-sized
// noise in LP solutions, and the window scheduler then "admitted" requests
// to principals with zero capacity and no servers (ServerPool::pick
// returned null => crash). Fixed by clamping demands inside the scheduler
// and raising the quota-noise threshold.
TEST(Regression, ConservativeModeNeverRoutesToZeroCapacityOwners) {
  core::AgreementGraph g;
  g.add_principal("P0", 0.0);     // pure consumer: no servers
  g.add_principal("P1", 234.89);  // the only resource owner
  const sched::ResponseTimeScheduler scheduler(
      g, core::compute_access_levels(g));

  sched::WindowScheduler ws(&scheduler, 100 * kMillisecond,
                            /*redirector_count=*/2);
  const sched::GlobalDemand none;  // no snapshot: conservative mode
  for (int window = 0; window < 50; ++window) {
    ws.begin_window({400.0, 400.0}, none);
    for (core::PrincipalId p = 0; p < 2; ++p) {
      while (const auto owner = ws.try_admit(p)) {
        // Whatever is admitted must be backed by real capacity.
        EXPECT_GT(g.capacity(*owner), 0.0);
      }
    }
  }
}

// Bug 2: the per-redirector share of a principal's global queue used
// max(global, local) as the denominator, which biases the slice sum below
// one whenever any node's local estimate runs ahead of the snapshot — a
// principal whose clients span redirectors was silently under-served
// (~455 of its 480 req/s entitlement) with the gap leaking to its peer.
// Bug 3: requests parked in a server's FIFO by transient over-admission
// were invisible to demand estimates; the closed loop then locked in at
// whatever split the transient left. Both fixed in WindowScheduler /
// L4Redirector demand accounting; this end-to-end check pins the result.
TEST(Regression, SplitClientsStillReceiveFullMandatoryShares) {
  core::AgreementGraph g;
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(1, 0, 0.5, 0.5);

  experiments::ScenarioConfig c;
  c.graph = g;
  c.layer = experiments::Layer::kL4;
  c.redirector_count = 2;  // A's and B's clients both span the fleet
  c.servers = {{"A", 320.0}, {"B", 320.0}};
  for (int k = 0; k < 4; ++k)
    c.clients.push_back({"A" + std::to_string(k), "A",
                         static_cast<std::size_t>(k) % 2, 200.0,
                         {{0.0, 40.0}}});
  for (int k = 0; k < 2; ++k)
    c.clients.push_back({"B" + std::to_string(k), "B",
                         static_cast<std::size_t>(k) % 2, 200.0,
                         {{0.0, 40.0}}});
  c.phases = {{"steady", 20.0, 38.0}};
  c.duration_sec = 40.0;

  const auto result = experiments::run_scenario(c);
  // Pre-fix this settled around A=455/B=185; the contract says 480/160.
  EXPECT_NEAR(result.phase_served(0, 0), 480.0, 12.0);
  EXPECT_NEAR(result.phase_served(0, 1), 160.0, 12.0);
}

// Bug 4 (found while bringing up Figure 6): rejected requests all retried
// after exactly retry_delay, re-synchronizing into bursts that alternately
// overflowed and starved the per-window quota; served rates sagged well
// below the plan. Fixed with retry jitter; this checks the served rate
// stays near the planned allocation under sustained rejection.
TEST(Regression, RetryStormsDoNotStarveQuota) {
  core::AgreementGraph g;
  g.add_principal("S", 0.0);
  g.add_principal("A", 0.0);
  g.set_agreement(0, 1, 1.0, 1.0);

  experiments::ScenarioConfig c;
  c.graph = g;
  c.layer = experiments::Layer::kL7;
  c.servers = {{"S", 100.0}};  // far below offered load
  c.clients = {{"C1", "A", 0, 135.0, {{0.0, 30.0}}},
               {"C2", "A", 0, 135.0, {{0.0, 30.0}}}};
  c.phases = {{"steady", 10.0, 28.0}};
  c.duration_sec = 30.0;

  const auto result = experiments::run_scenario(c);
  // The server's 100 req/s must be consumed nearly fully despite ~170
  // req/s of perpetual retries.
  EXPECT_GE(result.phase_served(0, 1), 92.0);
}

}  // namespace
}  // namespace sharegrid
