// Regression tests for bugs found by the property suites and scaling
// sweeps. Each test pins the exact failure mode so it cannot quietly
// return.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "lp/problem.hpp"
#include "lp/solve_context.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/window_scheduler.hpp"
#include "util/rng.hpp"

namespace sharegrid {
namespace {

// Bug 1: the conservative no-snapshot mode used a raw 1e9 demand; theta-row
// coefficients of that size times the solver tolerance left request-sized
// noise in LP solutions, and the window scheduler then "admitted" requests
// to principals with zero capacity and no servers (ServerPool::pick
// returned null => crash). Fixed by clamping demands inside the scheduler
// and raising the quota-noise threshold.
TEST(Regression, ConservativeModeNeverRoutesToZeroCapacityOwners) {
  core::AgreementGraph g;
  g.add_principal("P0", 0.0);     // pure consumer: no servers
  g.add_principal("P1", 234.89);  // the only resource owner
  const sched::ResponseTimeScheduler scheduler(
      g, core::compute_access_levels(g));

  sched::WindowScheduler ws(&scheduler, 100 * kMillisecond,
                            /*redirector_count=*/2);
  const sched::GlobalDemand none;  // no snapshot: conservative mode
  for (int window = 0; window < 50; ++window) {
    ws.begin_window({400.0, 400.0}, none);
    for (core::PrincipalId p = 0; p < 2; ++p) {
      while (const auto owner = ws.try_admit(p)) {
        // Whatever is admitted must be backed by real capacity.
        EXPECT_GT(g.capacity(*owner), 0.0);
      }
    }
  }
}

// Bug 2: the per-redirector share of a principal's global queue used
// max(global, local) as the denominator, which biases the slice sum below
// one whenever any node's local estimate runs ahead of the snapshot — a
// principal whose clients span redirectors was silently under-served
// (~455 of its 480 req/s entitlement) with the gap leaking to its peer.
// Bug 3: requests parked in a server's FIFO by transient over-admission
// were invisible to demand estimates; the closed loop then locked in at
// whatever split the transient left. Both fixed in WindowScheduler /
// L4Redirector demand accounting; this end-to-end check pins the result.
TEST(Regression, SplitClientsStillReceiveFullMandatoryShares) {
  core::AgreementGraph g;
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(1, 0, 0.5, 0.5);

  experiments::ScenarioConfig c;
  c.graph = g;
  c.layer = experiments::Layer::kL4;
  c.redirector_count = 2;  // A's and B's clients both span the fleet
  c.servers = {{"A", 320.0}, {"B", 320.0}};
  for (int k = 0; k < 4; ++k)
    c.clients.push_back({"A" + std::to_string(k), "A",
                         static_cast<std::size_t>(k) % 2, 200.0,
                         {{0.0, 40.0}}});
  for (int k = 0; k < 2; ++k)
    c.clients.push_back({"B" + std::to_string(k), "B",
                         static_cast<std::size_t>(k) % 2, 200.0,
                         {{0.0, 40.0}}});
  c.phases = {{"steady", 20.0, 38.0}};
  c.duration_sec = 40.0;

  const auto result = experiments::run_scenario(c);
  // Pre-fix this settled around A=455/B=185; the contract says 480/160.
  EXPECT_NEAR(result.phase_served(0, 0), 480.0, 12.0);
  EXPECT_NEAR(result.phase_served(0, 1), 160.0, 12.0);
}

// Bug 4 (found while bringing up Figure 6): rejected requests all retried
// after exactly retry_delay, re-synchronizing into bursts that alternately
// overflowed and starved the per-window quota; served rates sagged well
// below the plan. Fixed with retry jitter; this checks the served rate
// stays near the planned allocation under sustained rejection.
TEST(Regression, RetryStormsDoNotStarveQuota) {
  core::AgreementGraph g;
  g.add_principal("S", 0.0);
  g.add_principal("A", 0.0);
  g.set_agreement(0, 1, 1.0, 1.0);

  experiments::ScenarioConfig c;
  c.graph = g;
  c.layer = experiments::Layer::kL7;
  c.servers = {{"S", 100.0}};  // far below offered load
  c.clients = {{"C1", "A", 0, 135.0, {{0.0, 30.0}}},
               {"C2", "A", 0, 135.0, {{0.0, 30.0}}}};
  c.phases = {{"steady", 10.0, 28.0}};
  c.duration_sec = 30.0;

  const auto result = experiments::run_scenario(c);
  // The server's 100 req/s must be consumed nearly fully despite ~170
  // req/s of perpetual retries.
  EXPECT_GE(result.phase_served(0, 1), 92.0);
}

// Bug 5 (found by the SHAREGRID_AUDIT build of the integration suite): the
// simplex ratio test accepted "ties" within an absolute tolerance window and
// let the accepted ratio ratchet upward across rows. Pivoting on a row whose
// ratio exceeds the true minimum drives the minimum row's rhs negative by
// (difference * pivot-column entry) — with scheduler-sized coefficients that
// is request-sized infeasibility, and the returned "optimal" point overshot
// the binding constraint. Fixed by making the minimum-ratio comparison exact
// (degenerate ties that matter for Bland's rule are exactly 0).
TEST(Regression, RatioTestTieWindowDoesNotOvershootBindingConstraint) {
  // Two near-tied rows, large coefficients, the larger-ratio row first. The
  // old tie window (|delta ratio| < 1e-9 * 1e6-scale) picked row 0 by basis
  // order and left rhs[1] at -0.05; the reported x0 then violated row 1.
  lp::Problem p(1, lp::Sense::kMaximize);
  p.set_objective(0, 1.0);
  p.add_constraint({{0, 1e6}}, lp::Relation::kLessEq, 1000000.0005);
  p.add_constraint({{0, 1e6}}, lp::Relation::kLessEq, 1000000.0);
  const lp::Solution s = lp::solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_LE(s.values[0], 1.0 + 1e-12);
  EXPECT_NO_THROW(audit::audit_lp_solution(p, s, 1e-10));
}

// Bug 6 (found by the SHAREGRID_AUDIT build of the robustness suite): after
// phase 1, an artificial variable that cannot be pivoted out stays basic in
// a redundant row — but the row kept sub-threshold (< 1e-7) residue in its
// structural columns. Phase-2 pivots multiplied that residue by
// saturated-demand-scale rhs values and leaked ~1e6 into the basic
// artificial, so solve() returned kOptimal for a point violating an original
// constraint by six orders of magnitude beyond tolerance. Fixed by zeroing
// the residue of rows whose artificial stays basic. The pinned check: every
// kOptimal result of the degenerate-coefficient sweep must satisfy the
// original problem (audit_lp_solution throws if not).
TEST(Regression, DegenerateCoefficientOptimaSatisfyOriginalProblem) {
  Rng rng(77);  // same seed as Robustness.SimplexSurvivesDegenerateCoefficients
  for (int trial = 0; trial < 50; ++trial) {
    lp::Problem p(3, lp::Sense::kMaximize);
    for (std::size_t j = 0; j < 3; ++j) {
      p.set_objective(j, rng.uniform(-1.0, 1.0));
      p.set_bounds(j, 0.0, rng.chance(0.5) ? lp::kInfinity : 1e9);
    }
    for (int c = 0; c < 4; ++c) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t j = 0; j < 3; ++j) {
        const double magnitude =
            rng.chance(0.3) ? 0.0
                            : (rng.chance(0.5) ? 1e-8 : rng.uniform(0.0, 1e6));
        terms.emplace_back(j, magnitude);
      }
      p.add_constraint(std::move(terms),
                       rng.chance(0.5) ? lp::Relation::kLessEq
                                       : lp::Relation::kGreaterEq,
                       rng.uniform(0.0, 1e6));
    }
    const lp::Solution s = lp::solve(p);
    if (!s.optimal()) continue;
    EXPECT_NO_THROW(audit::audit_lp_solution(p, s, 1e-5)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sharegrid
