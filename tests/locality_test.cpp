// Tests for the locality-cost extension (§3.1.2): per-server push caps c_k.
#include <gtest/gtest.h>

#include "experiments/scenario.hpp"
#include "experiments/scenario_ini.hpp"

namespace sharegrid::experiments {
namespace {

ScenarioConfig community_with_locality(std::vector<double> caps) {
  core::AgreementGraph g;
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(1, 0, 0.5, 0.5);

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL4;
  c.locality_caps = std::move(caps);
  c.servers = {{"A", 320.0}, {"B", 320.0}};
  c.clients = {
      {"A1", "A", 0, 400.0, {{0.0, 60.0}}},
      {"A2", "A", 0, 400.0, {{0.0, 60.0}}},
      {"B1", "B", 0, 400.0, {{0.0, 60.0}}},
  };
  c.phases = {{"steady", 10.0, 58.0}};
  c.duration_sec = 60.0;
  return c;
}

TEST(Locality, CapLimitsRemoteOverflow) {
  // Without locality, A overflows 160 req/s onto B's server (fig9 phase 1).
  const ScenarioResult open = run_scenario(community_with_locality({}));
  EXPECT_NEAR(open.phase_served(0, 0), 480.0, 25.0);

  // Capping pushes to B's server at 200 req/s: B's own floor of 160 fits,
  // but A's remote overflow is squeezed to ~40, so A ~360, B unchanged.
  const ScenarioResult capped =
      run_scenario(community_with_locality({1e18, 200.0}));
  EXPECT_NEAR(capped.phase_served(0, 0), 360.0, 25.0);
  EXPECT_NEAR(capped.phase_served(0, 1), 160.0, 20.0);
}

TEST(Locality, InfeasibleCapsFallBackToBestEffort) {
  // Caps tighter than the mandatory floors: the scheduler drops the floors
  // rather than failing, still serving as much as locality allows.
  const ScenarioResult result =
      run_scenario(community_with_locality({100.0, 100.0}));
  const double total =
      result.phase_served(0, 0) + result.phase_served(0, 1);
  EXPECT_LE(total, 210.0);  // both servers capped at 100
  EXPECT_GE(total, 150.0);  // but capacity under the caps is still used
}

TEST(Locality, ParsesFromIni) {
  const std::string text = R"ini(
layer = l4
duration = 10
[principal]
name = A
[principal]
name = B
locality_cap = 200
[agreement]
owner = B
user = A
lower = 0.5
upper = 0.5
[server]
owner = A
capacity = 320
[server]
owner = B
capacity = 320
[client]
name = C
principal = A
rate = 100
active = 0-10
)ini";
  const ScenarioConfig config = scenario_from_ini(parse_ini(text));
  ASSERT_EQ(config.locality_caps.size(), 2u);
  EXPECT_GT(config.locality_caps[0], 1e17);  // unconstrained
  EXPECT_DOUBLE_EQ(config.locality_caps[1], 200.0);

  // No locality keys at all -> empty (unconstrained) vector.
  const std::string plain = R"ini(
layer = l4
duration = 10
[principal]
name = A
[server]
owner = A
capacity = 320
[client]
name = C
principal = A
rate = 100
active = 0-10
)ini";
  EXPECT_TRUE(scenario_from_ini(parse_ini(plain)).locality_caps.empty());
}

}  // namespace
}  // namespace sharegrid::experiments
