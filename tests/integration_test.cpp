// Integration tests: full simulated experiments, including every paper
// figure, distributed-vs-centralized equivalence, and determinism.
#include <gtest/gtest.h>

#include "experiments/paper_figures.hpp"
#include "experiments/scenario.hpp"

namespace sharegrid::experiments {
namespace {

// Every figure in the paper's evaluation must reproduce its shape. These are
// the same checks the bench binaries enforce, wired into ctest.
class PaperFigureTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaperFigureTest, ShapeMatchesPaper) {
  const FigureExperiment figure = all_figures()[GetParam()];
  const ScenarioResult result = run_scenario(figure.config);
  std::vector<std::string> failures;
  EXPECT_TRUE(check_figure(figure, result, &failures));
  for (const auto& f : failures) ADD_FAILURE() << f;
}

INSTANTIATE_TEST_SUITE_P(AllFigures, PaperFigureTest,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const auto& param_info) {
                           return all_figures()[param_info.param].id;
                         });

TEST(Integration, DeterministicAcrossRuns) {
  const FigureExperiment figure = figure9();
  const ScenarioResult a = run_scenario(figure.config);
  const ScenarioResult b = run_scenario(figure.config);
  for (std::size_t p = 0; p < a.principal_names.size(); ++p) {
    ASSERT_EQ(a.metrics.served(p).bin_count(), b.metrics.served(p).bin_count());
    for (std::size_t bin = 0; bin < a.metrics.served(p).bin_count(); ++bin)
      EXPECT_EQ(a.metrics.served(p).events_in_bin(bin),
                b.metrics.served(p).events_in_bin(bin));
  }
}

TEST(Integration, SeedChangesNoiseNotShape) {
  FigureExperiment figure = figure9();
  figure.config.seed = 987654321;
  const ScenarioResult result = run_scenario(figure.config);
  std::vector<std::string> failures;
  EXPECT_TRUE(check_figure(figure, result, &failures));
  for (const auto& f : failures) ADD_FAILURE() << f;
}

TEST(Integration, DistributedMatchesCentralized) {
  // The paper's §3.2 claim: redirectors acting on global aggregates make the
  // same decisions a single all-seeing redirector would. Split figure 6's
  // clients across 1 vs 2 redirectors (zero tree delay) and compare phases.
  FigureExperiment centralized = figure6();
  centralized.config.redirector_count = 1;
  for (auto& client : centralized.config.clients) client.redirector = 0;

  const ScenarioResult one = run_scenario(centralized.config);
  const ScenarioResult two = run_scenario(figure6().config);

  for (std::size_t phase = 0; phase < one.phase_reports.size(); ++phase) {
    for (std::size_t p = 0; p < one.principal_names.size(); ++p) {
      const double a = one.phase_served(phase, p);
      const double b = two.phase_served(phase, p);
      EXPECT_NEAR(a, b, std::max(8.0, 0.08 * std::max(a, b)))
          << "phase " << phase << " principal " << one.principal_names[p];
    }
  }
}

TEST(Integration, WeightedAdmissionStillRespectsShares) {
  // Turn on reply-size weighted admission: agreement shares now govern
  // capacity units rather than request counts, but B's mandatory floor must
  // still hold in request terms within a generous band.
  FigureExperiment figure = figure9();
  figure.config.weighted_admission = true;
  const ScenarioResult result = run_scenario(figure.config);
  // Phase 2 (A off): B still gets the whole server.
  EXPECT_NEAR(result.phase_served(1, 1), 320.0, 48.0);
}

TEST(Integration, ScenarioValidatesItsInputs) {
  ScenarioConfig config;  // empty: no servers/clients
  EXPECT_THROW(run_scenario(config), ContractViolation);

  FigureExperiment figure = figure9();
  figure.config.clients[0].principal = "does-not-exist";
  EXPECT_THROW(run_scenario(figure.config), ContractViolation);

  FigureExperiment f2 = figure9();
  f2.config.clients[0].redirector = 99;
  EXPECT_THROW(run_scenario(f2.config), ContractViolation);
}

TEST(Integration, ReportsCoordinationTraffic) {
  const ScenarioResult result = run_scenario(figure6().config);
  // Two leaves under a virtual root: 4 messages per round, one round per
  // 100 ms window over 360 s.
  EXPECT_NEAR(static_cast<double>(result.coordination_messages),
              4.0 * 3600.0, 40.0);
}

TEST(Integration, SeriesAndPhaseTablesAreWellFormed) {
  const ScenarioResult result = run_scenario(figure7().config);
  const TextTable series = result.series_table();
  EXPECT_GE(series.row_count(), 149u);
  const TextTable phases = result.phase_table();
  EXPECT_EQ(phases.row_count(), 1u);
}

}  // namespace
}  // namespace sharegrid::experiments
