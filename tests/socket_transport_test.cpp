// Tests for the cross-process snapshot transport (coord/socket_transport.hpp)
// and its wire codec: aggregate parity with InProcessTransport, the
// deadline -> staleness -> conservative-1/R degradation path, star message
// accounting, the malformed-frame rejection table (both the pure codec and
// raw bytes injected at a live root), and the round-tag-monotone audit.
//
// All protocol timing here uses fake caller-supplied clocks — poll(now) owns
// every deadline — so only the byte transport itself is real. Real sleeps
// appear solely to let background reader threads move bytes between polls.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/snapshot_wire.hpp"
#include "coord/socket_transport.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace sharegrid {
namespace {

/// Runs @p fn, which must throw ContractViolation, and returns its message.
template <class Fn>
std::string violation_message(Fn&& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a ContractViolation, but no check fired";
  return {};
}

/// Polls every node with a shared fake clock until @p done or ~2000 rounds
/// of real 300 us beats have passed (the beats let reader threads land
/// bytes in the inboxes between polls).
bool pump_until(const std::vector<coord::SocketTransport*>& nodes,
                std::int64_t* now, std::int64_t step,
                const std::function<bool()>& done) {
  for (int i = 0; i < 2000 && !done(); ++i) {
    for (coord::SocketTransport* node : nodes) node->poll(*now);
    *now += step;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  return done();
}

coord::SocketTransport::Options root_options(std::size_t fleet) {
  coord::SocketTransport::Options options;
  options.peers.assign(fleet, "127.0.0.1:0");
  options.process_index = 0;
  options.fleet_size = fleet;
  options.round_period_usec = 1000;
  options.round_deadline_usec = 1'000'000;
  options.io_timeout_ms = 10;
  return options;
}

coord::SocketTransport::Options leaf_options(
    const coord::SocketTransport::Options& root, std::uint16_t root_port,
    std::size_t index) {
  coord::SocketTransport::Options options = root;
  options.peers[0] = "127.0.0.1:" + std::to_string(root_port);
  options.process_index = index;
  options.member_offset = index;
  options.dial_retry_usec = 1000;
  return options;
}

// ---------------------------------------------------------------------------
// Aggregate parity: the wire fleet must reproduce InProcessTransport's sums
// bitwise — same member order, same floating-point summation order.
// ---------------------------------------------------------------------------

TEST(SocketTransport, AggregatesMatchInProcessBitwise) {
  constexpr std::size_t kFleet = 3;
  constexpr int kRounds = 4;
  // Awkward, non-round values so a different summation order would show.
  auto provider = [](std::size_t m, std::uint64_t round) {
    return std::vector<double>{0.1 * static_cast<double>(m + 1) + 1e-13,
                               1.0 / (3.0 + static_cast<double>(m + round))};
  };

  // Oracle: the synchronous in-process fleet.
  std::vector<std::vector<double>> expected;
  {
    coord::InProcessTransport oracle(kFleet, 2);
    std::uint64_t oracle_round = 0;
    std::vector<std::vector<double>> delivered;
    for (std::size_t m = 0; m < kFleet; ++m)
      oracle.attach(
          m, [&, m] { return provider(m, oracle_round); },
          [&, m](std::uint64_t, const std::vector<double>& sum) {
            if (m == 0) delivered.push_back(sum);
          });
    oracle.start();
    for (oracle_round = 1; oracle_round <= kRounds; ++oracle_round)
      oracle.exchange();
    oracle.stop();
    expected = delivered;
  }
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(kRounds));

  // Wire fleet: one root + two leaves in this process.
  const auto base = root_options(kFleet);
  coord::SocketTransport root(1, 2, base);
  std::vector<std::vector<double>> root_sums;
  root.attach(
      0, [&] { return provider(0, root.rounds_completed() + 1); },
      [&](std::uint64_t, const std::vector<double>& sum) {
        root_sums.push_back(sum);
      });
  root.start();

  std::vector<std::unique_ptr<coord::SocketTransport>> leaves;
  std::vector<std::vector<std::vector<double>>> leaf_sums(kFleet);
  std::vector<std::uint64_t> leaf_round(kFleet, 0);
  for (std::size_t m = 1; m < kFleet; ++m) {
    // Providers sample right after on_round_start, so the hook is where a
    // leaf learns which round it is contributing to.
    coord::SocketTransport::Options options =
        leaf_options(base, root.listen_port(), m);
    options.on_round_start = [&leaf_round, m](std::uint64_t round) {
      leaf_round[m] = round;
    };
    auto leaf =
        std::make_unique<coord::SocketTransport>(1, 2, std::move(options));
    leaf->attach(
        0, [&, m] { return provider(m, leaf_round[m]); },
        [&, m](std::uint64_t, const std::vector<double>& sum) {
          leaf_sums[m].push_back(sum);
        });
    leaf->start();
    leaves.push_back(std::move(leaf));
  }

  std::vector<coord::SocketTransport*> nodes{&root};
  for (const auto& leaf : leaves) nodes.push_back(leaf.get());
  std::int64_t now = 0;
  const bool done = pump_until(nodes, &now, 500, [&] {
    return root_sums.size() >= static_cast<std::size_t>(kRounds) &&
           leaf_sums[1].size() >= static_cast<std::size_t>(kRounds) &&
           leaf_sums[2].size() >= static_cast<std::size_t>(kRounds);
  });
  for (coord::SocketTransport* node : nodes) node->stop();
  ASSERT_TRUE(done) << "fleet never completed " << kRounds << " rounds";

  for (std::size_t r = 0; r < static_cast<std::size_t>(kRounds); ++r) {
    EXPECT_EQ(root_sums[r], expected[r]) << "round " << r + 1;
    EXPECT_EQ(leaf_sums[1][r], expected[r]) << "round " << r + 1;
    EXPECT_EQ(leaf_sums[2][r], expected[r]) << "round " << r + 1;
  }
  EXPECT_EQ(root.rounds_abandoned(), 0u);
  EXPECT_EQ(root.frames_rejected(), 0u);
}

// ---------------------------------------------------------------------------
// Degradation: kill a leaf, the root's rounds hit the deadline, no fresh
// aggregate flows, and within one staleness budget every survivor's control
// plane member is back on the conservative 1/R regime.
// ---------------------------------------------------------------------------

TEST(SocketTransport, PeerLossDegradesSurvivorsToConservative) {
  constexpr std::size_t kFleet = 3;
  auto base = root_options(kFleet);
  base.round_deadline_usec = 20'000;
  base.stale_after_usec = 50'000;

  const test::FixedRateScheduler scheduler({100.0});
  coord::ControlPlaneConfig cp;
  cp.window = 100 * kMillisecond;
  cp.redirector_count = kFleet;

  // Root hosts a real ControlPlane member, so this also pins the
  // ControlPlane::connect -> attach_stale_handler -> invalidate_global
  // wiring end to end.
  coord::SocketTransport root(1, 1, base);
  coord::ControlPlane plane(&scheduler, cp);
  coord::ControlPlane::Member* member = plane.add_member();
  plane.connect(&root);
  root.start();

  auto leaf1 = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 1));
  std::uint64_t leaf1_delivered = 0;
  leaf1->attach(
      0, [] { return std::vector<double>{2.0}; },
      [&](std::uint64_t, const std::vector<double>&) { ++leaf1_delivered; });
  bool leaf1_stale = false;
  leaf1->attach_stale_handler(0, [&] { leaf1_stale = true; });
  leaf1->start();

  auto leaf2 = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 2));
  leaf2->attach(
      0, [] { return std::vector<double>{3.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  leaf2->start();

  // Healthy fleet first: one full round must deliver everywhere and pull
  // the member out of the conservative regime.
  std::int64_t now = 0;
  ASSERT_TRUE(pump_until({&root, leaf1.get(), leaf2.get()}, &now, 500, [&] {
    return member->global().valid && leaf1_delivered >= 1;
  }));
  const std::uint64_t healthy_rounds = root.rounds_completed();
  EXPECT_GE(healthy_rounds, 1u);

  // Kill leaf 2 abruptly. Survivors keep polling; within one deadline the
  // open round is abandoned, and within the staleness budget the fallback
  // fires on both survivors.
  leaf2->stop();
  leaf2.reset();
  ASSERT_TRUE(pump_until({&root, leaf1.get()}, &now, 5'000, [&] {
    return root.stale_fallbacks() >= 1 && leaf1_stale;
  }));
  EXPECT_GE(root.rounds_abandoned(), 1u);
  EXPECT_FALSE(member->global().valid)
      << "stale handler must drop the member back to the 1/R regime";

  // The next window plans exactly like a never-snapshotted member: the
  // conservative cross-fleet slice audit must hold again.
  plane.end_windows();
  plane.begin_windows(100 * kMillisecond);
  plane.audit_window_slices();

  root.stop();
  leaf1->stop();
}

// ---------------------------------------------------------------------------
// Wire codec rejection table: every malformed shape is a status, never a
// throw, never a crash.
// ---------------------------------------------------------------------------

TEST(SocketTransportWire, EncodeDecodeRoundTrips) {
  coord::wire::Frame frame;
  frame.type = coord::wire::FrameType::kReport;
  frame.round = 0x0123456789abcdefULL;
  frame.member = 7;
  frame.values = {1.5, -0.0, 1e-300};
  coord::wire::Frame out;
  ASSERT_EQ(coord::wire::decode(coord::wire::encode(frame), &out),
            coord::wire::DecodeStatus::kOk);
  EXPECT_EQ(out.type, frame.type);
  EXPECT_EQ(out.round, frame.round);
  EXPECT_EQ(out.member, frame.member);
  EXPECT_EQ(out.values, frame.values);  // bit-exact, -0.0 included
}

TEST(SocketTransportWire, MalformedFrameTable) {
  coord::wire::Frame valid;
  valid.type = coord::wire::FrameType::kAggregate;
  valid.round = 42;
  valid.values = {1.0, 2.0};
  const std::string good = coord::wire::encode(valid);

  struct Case {
    const char* name;
    std::string bytes;
    coord::wire::DecodeStatus expected;
  };
  std::vector<Case> cases;
  // Every truncation of a valid frame (header and payload) must be rejected
  // as kTruncated or kSizeMismatch — never accepted, never a crash.
  for (std::size_t len = 0; len < good.size(); ++len) {
    cases.push_back({"truncated", good.substr(0, len),
                     len < 24 ? coord::wire::DecodeStatus::kTruncated
                              : coord::wire::DecodeStatus::kSizeMismatch});
  }
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  cases.push_back({"bad magic", bad_magic,
                   coord::wire::DecodeStatus::kBadMagic});
  std::string bad_version = good;
  bad_version[4] = 9;
  cases.push_back({"bad version", bad_version,
                   coord::wire::DecodeStatus::kBadVersion});
  std::string bad_type = good;
  bad_type[6] = 99;
  cases.push_back({"bad type", bad_type, coord::wire::DecodeStatus::kBadType});
  std::string bad_count = good;
  bad_count[20] = 3;  // claims 3 doubles, carries 2
  cases.push_back({"count too large", bad_count,
                   coord::wire::DecodeStatus::kSizeMismatch});
  std::string extra = good + "trailing-garbage";
  cases.push_back({"trailing bytes", extra,
                   coord::wire::DecodeStatus::kSizeMismatch});

  for (const Case& c : cases) {
    coord::wire::Frame out;
    EXPECT_EQ(coord::wire::decode(c.bytes, &out), c.expected)
        << c.name << " (" << c.bytes.size() << " bytes)";
  }
}

// ---------------------------------------------------------------------------
// Live rejection: raw malformed bytes injected at a running root must bump
// the reject counters (transport + metrics registry) and leave the protocol
// able to finish rounds with its real peer.
// ---------------------------------------------------------------------------

TEST(SocketTransport, MalformedFramesAreCountedNotFatal) {
  constexpr std::size_t kFleet = 2;
  auto base = root_options(kFleet);
  // The attacker's connection may assemble the "fleet" before the real leaf
  // dials, wasting round 1 on a deadline; keep that recycle cheap.
  base.round_deadline_usec = 50'000;
  coord::SocketTransport root(1, 1, base);
  std::uint64_t root_delivered = 0;
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [&](std::uint64_t, const std::vector<double>&) { ++root_delivered; });
  root.start();

  auto leaf = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 1));
  leaf->attach(
      0, [] { return std::vector<double>{2.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  leaf->start();

  // The attacker dials the root like a leaf would...
  net::Socket attacker = net::Socket::connect_loopback(root.listen_port());

  // ...but the fleet thinks it is size 2, so the root holds round 1 until
  // both connections exist; from here rounds can complete regardless of the
  // garbage below (kFleet counts *members*, and member reports come from
  // the real leaf).
  std::int64_t now = 0;

  // (a) undecodable bytes inside a well-formed envelope.
  attacker.write_frame("not-a-snapshot-frame-at-all");
  // (b) a structurally valid report for an absurd member index.
  coord::wire::Frame bogus;
  bogus.type = coord::wire::FrameType::kReport;
  bogus.round = 1;
  bogus.member = 999;
  bogus.values = {0.0};
  attacker.write_frame(coord::wire::encode(bogus));
  // (c) a frame type the root never accepts.
  coord::wire::Frame downstream;
  downstream.type = coord::wire::FrameType::kAggregate;
  downstream.round = 1;
  downstream.values = {0.0};
  attacker.write_frame(coord::wire::encode(downstream));

  ASSERT_TRUE(pump_until({&root, leaf.get()}, &now, 500, [&] {
    return root.frames_rejected() >= 3 && root.rounds_completed() >= 1;
  })) << "rejected=" << root.frames_rejected()
      << " completed=" << root.rounds_completed()
      << " last_reason=" << root.last_reject_reason();
  EXPECT_GE(root_delivered, 1u);

  // (d) an oversized length prefix: framing is unrecoverable, the root must
  // drop that connection (and only that connection) and keep running.
  const std::uint32_t huge = 64u << 20;
  std::string prefix;
  for (int i = 0; i < 4; ++i)
    prefix.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  attacker.write_all(prefix);
  const std::uint64_t before = root.rounds_completed();
  ASSERT_TRUE(pump_until({&root, leaf.get()}, &now, 500, [&] {
    return root.frames_rejected() >= 4 && root.rounds_completed() > before;
  })) << "rejected=" << root.frames_rejected()
      << " completed=" << root.rounds_completed() << " before=" << before
      << " abandoned=" << root.rounds_abandoned()
      << " leaf_rejected=" << leaf->frames_rejected()
      << " leaf_reason=" << leaf->last_reject_reason()
      << " last_reason=" << root.last_reject_reason();
  // On a loaded machine a benign "stale round tag" reject can land after the
  // oversized one and overwrite the last reason; the dropped-connection check
  // below is what uniquely pins the oversized path.
  EXPECT_TRUE(root.last_reject_reason() == "oversized length prefix" ||
              root.last_reject_reason() == "stale round tag")
      << root.last_reject_reason();
  // The attacker's socket was shut down by the root.
  attacker.set_read_timeout_ms(200);
  net::ReadResult result = attacker.read_some();
  while (result.status == net::ReadStatus::kData)
    result = attacker.read_some();
  EXPECT_EQ(result.status, net::ReadStatus::kClosed);

  root.stop();
  leaf->stop();
}

// ---------------------------------------------------------------------------
// Stale round tags and duplicate reports at a live root.
// ---------------------------------------------------------------------------

TEST(SocketTransport, StaleAndDuplicateReportsAreRejected) {
  constexpr std::size_t kFleet = 2;
  const auto base = root_options(kFleet);
  coord::SocketTransport root(1, 1, base);
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  root.start();

  // A hand-driven "leaf": we speak the protocol manually so we can replay.
  net::Socket peer = net::Socket::connect_loopback(root.listen_port());
  peer.set_read_timeout_ms(200);
  net::FrameReader frames;

  // Wait for round-start 1.
  std::int64_t now = 0;
  coord::wire::Frame start;
  bool got_start = false;
  for (int i = 0; i < 2000 && !got_start; ++i) {
    root.poll(now);
    now += 500;
    const net::ReadResult r = peer.read_some();
    if (r.status == net::ReadStatus::kData) {
      frames.feed(r.data);
      std::string payload;
      while (frames.next(&payload) == net::FrameReader::Event::kFrame) {
        if (coord::wire::decode(payload, &start) ==
                coord::wire::DecodeStatus::kOk &&
            start.type == coord::wire::FrameType::kRoundStart) {
          got_start = true;
        }
      }
    }
  }
  ASSERT_TRUE(got_start);
  ASSERT_EQ(start.round, 1u);

  // Send the member-1 report twice: the first completes the round, the
  // replay must be rejected as a duplicate/stale tag, not crash the root.
  coord::wire::Frame report;
  report.type = coord::wire::FrameType::kReport;
  report.round = 1;
  report.member = 1;
  report.values = {2.0};
  peer.write_frame(coord::wire::encode(report));
  peer.write_frame(coord::wire::encode(report));
  // A report whose vector length disagrees with the fleet's must also fall.
  coord::wire::Frame fat = report;
  fat.round = 2;  // guess the next round so only the size check can reject
  fat.values = {1.0, 2.0};
  peer.write_frame(coord::wire::encode(fat));

  for (int i = 0; i < 2000 && root.frames_rejected() < 2; ++i) {
    root.poll(now);
    now += 500;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  EXPECT_GE(root.rounds_completed(), 1u);
  EXPECT_GE(root.frames_rejected(), 2u);
  root.stop();
}

// ---------------------------------------------------------------------------
// Star accounting: a completed round costs 2R logical messages fleet-wide.
// ---------------------------------------------------------------------------

TEST(SocketTransport, MessagesSentMirrorsTheStarTree) {
  constexpr std::size_t kFleet = 2;
  const auto base = root_options(kFleet);
  coord::SocketTransport root(1, 1, base);
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  root.start();
  auto leaf = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 1));
  std::uint64_t leaf_delivered = 0;
  leaf->attach(
      0, [] { return std::vector<double>{2.0}; },
      [&](std::uint64_t, const std::vector<double>&) { ++leaf_delivered; });
  leaf->start();

  std::int64_t now = 0;
  ASSERT_TRUE(pump_until({&root, leaf.get()}, &now, 500, [&] {
    return root.rounds_completed() >= 3 && leaf_delivered >= 3;
  }));
  root.stop();
  leaf->stop();

  // Every completed round: R reports up + R broadcasts down. The root may
  // have opened (sampled for) one extra round that never completed before
  // stop(), so allow exactly one sample's worth of slack per process.
  const std::uint64_t rounds = root.rounds_completed();
  const std::uint64_t fleet_messages =
      root.messages_sent() + leaf->messages_sent();
  EXPECT_GE(fleet_messages, 2 * kFleet * rounds);
  EXPECT_LE(fleet_messages, 2 * kFleet * rounds + kFleet);
}

// ---------------------------------------------------------------------------
// The delivery-side audit: round tags must strictly increase.
// ---------------------------------------------------------------------------

TEST(SocketTransportAudit, RoundTagMonotonePassesAndFires) {
  // Honest histories pass.
  audit::audit_round_tag_monotone(false, 0, 1);
  audit::audit_round_tag_monotone(true, 1, 2);
  audit::audit_round_tag_monotone(true, 2, 7);  // gaps are fine (abandons)

  // A replayed or reordered aggregate fires with an actionable message.
  const std::string msg = violation_message(
      [] { audit::audit_round_tag_monotone(true, 5, 5); });
  EXPECT_NE(msg.find("round-tag-monotone"), std::string::npos) << msg;
  EXPECT_NE(msg.find("replayed or reordered"), std::string::npos) << msg;
  violation_message([] { audit::audit_round_tag_monotone(true, 5, 4); });
}

TEST(SocketTransport, RejectsNonLoopbackPeers) {
  coord::SocketTransport::Options options;
  options.peers = {"10.0.0.1:7000", "10.0.0.2:7000"};
  const std::string msg = violation_message([&] {
    coord::SocketTransport transport(1, 1, options);
    transport.start();
  });
  EXPECT_NE(msg.find("loopback"), std::string::npos) << msg;
}

}  // namespace
}  // namespace sharegrid
