// Tests for the cross-process snapshot transport (coord/socket_transport.hpp)
// and its wire codec: aggregate parity with InProcessTransport, membership
// pruning and round-boundary rejoin, lease-based root election with
// incarnation fencing, the deadline -> staleness -> conservative-1/R
// degradation path (election disabled), star message accounting, the
// malformed-frame rejection table for both v1 snapshot and v2 membership
// frames (pure codec and raw bytes injected at a live process), and the
// delivery-side audits.
//
// All protocol timing here uses fake caller-supplied clocks — poll(now) owns
// every deadline, lease expiry and election — so only the byte transport
// itself is real. Real sleeps appear solely to let background reader threads
// move bytes between polls.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/snapshot_wire.hpp"
#include "coord/socket_transport.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace sharegrid {
namespace {

/// Runs @p fn, which must throw ContractViolation, and returns its message.
template <class Fn>
std::string violation_message(Fn&& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a ContractViolation, but no check fired";
  return {};
}

/// Polls every node with a shared fake clock until @p done or ~2000 rounds
/// of real 300 us beats have passed (the beats let reader threads land
/// bytes in the inboxes between polls).
bool pump_until(const std::vector<coord::SocketTransport*>& nodes,
                std::int64_t* now, std::int64_t step,
                const std::function<bool()>& done) {
  for (int i = 0; i < 2000 && !done(); ++i) {
    for (coord::SocketTransport* node : nodes) node->poll(*now);
    *now += step;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  return done();
}

/// Grabs an ephemeral loopback port the OS considers free right now. The
/// probe listener closes on return, so there is a tiny reuse race — fine
/// for tests that must pre-agree on a full-mesh port map.
std::uint16_t pick_port() {
  const net::Socket probe = net::Socket::listen_on_loopback(0);
  return probe.local_port();
}

coord::SocketTransport::Options root_options(std::size_t fleet) {
  coord::SocketTransport::Options options;
  options.peers.assign(fleet, "127.0.0.1:0");
  options.process_index = 0;
  options.fleet_size = fleet;
  options.round_period_usec = 1000;
  options.round_deadline_usec = 1'000'000;
  options.io_timeout_ms = 10;
  return options;
}

coord::SocketTransport::Options leaf_options(
    const coord::SocketTransport::Options& root, std::uint16_t root_port,
    std::size_t index) {
  coord::SocketTransport::Options options = root;
  options.peers[0] = "127.0.0.1:" + std::to_string(root_port);
  options.process_index = index;
  options.member_offset = index;
  options.reconnect_base_usec = 1000;
  return options;
}

/// A hand-driven raw peer: speaks the wire protocol over one socket so a
/// test can impersonate a process precisely (a zombie root, a rival, a
/// replayer) while polling the real transports under a fake clock.
struct RawPeer {
  net::Socket sock;
  net::FrameReader frames;

  explicit RawPeer(std::uint16_t port)
      : sock(net::Socket::connect_loopback(port)) {
    sock.set_read_timeout_ms(5);
  }
  void send(const coord::wire::Frame& frame) {
    sock.write_frame(coord::wire::encode(frame));
  }
  void hello(std::uint32_t process, std::uint64_t incarnation,
             std::uint64_t member_offset, std::uint64_t member_count) {
    coord::wire::Frame f;
    f.type = coord::wire::FrameType::kHello;
    f.member = process;
    f.incarnation = incarnation;
    f.aux = (member_offset << 32) | member_count;
    send(f);
  }
  void lease(std::uint32_t process, std::uint64_t incarnation,
             std::uint64_t round, std::uint64_t ttl_usec) {
    coord::wire::Frame f;
    f.type = coord::wire::FrameType::kLease;
    f.member = process;
    f.incarnation = incarnation;
    f.round = round;
    f.aux = ttl_usec;
    send(f);
  }
  void round_start(std::uint64_t round) {
    coord::wire::Frame f;
    f.type = coord::wire::FrameType::kRoundStart;
    f.round = round;
    send(f);
  }
  /// Reads (draining everything else) until a decoded frame satisfies
  /// @p pred, polling @p nodes between reads; false on exhaustion.
  bool read_until(const std::vector<coord::SocketTransport*>& nodes,
                  std::int64_t* now,
                  const std::function<bool(const coord::wire::Frame&)>& pred) {
    for (int i = 0; i < 500; ++i) {
      for (coord::SocketTransport* node : nodes) node->poll(*now);
      *now += 500;
      const net::ReadResult r = sock.read_some();
      if (r.status == net::ReadStatus::kData) {
        frames.feed(r.data);
        std::string payload;
        while (frames.next(&payload) == net::FrameReader::Event::kFrame) {
          coord::wire::Frame f;
          if (coord::wire::decode(payload, &f) ==
                  coord::wire::DecodeStatus::kOk &&
              pred(f))
            return true;
        }
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Aggregate parity: the wire fleet must reproduce InProcessTransport's sums
// bitwise — same member order, same floating-point summation order.
// ---------------------------------------------------------------------------

TEST(SocketTransport, AggregatesMatchInProcessBitwise) {
  constexpr std::size_t kFleet = 3;
  constexpr int kRounds = 4;
  // Awkward, non-round values so a different summation order would show.
  auto provider = [](std::size_t m, std::uint64_t round) {
    return std::vector<double>{0.1 * static_cast<double>(m + 1) + 1e-13,
                               1.0 / (3.0 + static_cast<double>(m + round))};
  };

  // Oracle: the synchronous in-process fleet.
  std::vector<std::vector<double>> expected;
  {
    coord::InProcessTransport oracle(kFleet, 2);
    std::uint64_t oracle_round = 0;
    std::vector<std::vector<double>> delivered;
    for (std::size_t m = 0; m < kFleet; ++m)
      oracle.attach(
          m, [&, m] { return provider(m, oracle_round); },
          [&, m](std::uint64_t, const std::vector<double>& sum) {
            if (m == 0) delivered.push_back(sum);
          });
    oracle.start();
    for (oracle_round = 1; oracle_round <= kRounds; ++oracle_round)
      oracle.exchange();
    oracle.stop();
    expected = delivered;
  }
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(kRounds));

  // Wire fleet: one root + two leaves in this process.
  const auto base = root_options(kFleet);
  coord::SocketTransport root(1, 2, base);
  std::vector<std::vector<double>> root_sums;
  root.attach(
      0, [&] { return provider(0, root.rounds_completed() + 1); },
      [&](std::uint64_t, const std::vector<double>& sum) {
        root_sums.push_back(sum);
      });
  root.start();

  std::vector<std::unique_ptr<coord::SocketTransport>> leaves;
  std::vector<std::vector<std::vector<double>>> leaf_sums(kFleet);
  std::vector<std::uint64_t> leaf_round(kFleet, 0);
  for (std::size_t m = 1; m < kFleet; ++m) {
    // Providers sample right after on_round_start, so the hook is where a
    // leaf learns which round it is contributing to.
    coord::SocketTransport::Options options =
        leaf_options(base, root.listen_port(), m);
    options.on_round_start = [&leaf_round, m](std::uint64_t round) {
      leaf_round[m] = round;
    };
    auto leaf =
        std::make_unique<coord::SocketTransport>(1, 2, std::move(options));
    leaf->attach(
        0, [&, m] { return provider(m, leaf_round[m]); },
        [&, m](std::uint64_t, const std::vector<double>& sum) {
          leaf_sums[m].push_back(sum);
        });
    leaf->start();
    leaves.push_back(std::move(leaf));
  }

  std::vector<coord::SocketTransport*> nodes{&root};
  for (const auto& leaf : leaves) nodes.push_back(leaf.get());
  std::int64_t now = 0;
  const bool done = pump_until(nodes, &now, 500, [&] {
    return root_sums.size() >= static_cast<std::size_t>(kRounds) &&
           leaf_sums[1].size() >= static_cast<std::size_t>(kRounds) &&
           leaf_sums[2].size() >= static_cast<std::size_t>(kRounds);
  });
  for (coord::SocketTransport* node : nodes) node->stop();
  ASSERT_TRUE(done) << "fleet never completed " << kRounds << " rounds";

  for (std::size_t r = 0; r < static_cast<std::size_t>(kRounds); ++r) {
    EXPECT_EQ(root_sums[r], expected[r]) << "round " << r + 1;
    EXPECT_EQ(leaf_sums[1][r], expected[r]) << "round " << r + 1;
    EXPECT_EQ(leaf_sums[2][r], expected[r]) << "round " << r + 1;
  }
  EXPECT_EQ(root.rounds_abandoned(), 0u);
  EXPECT_EQ(root.frames_rejected(), 0u);
  // The full, churn-free fleet: every round carried all R members.
  EXPECT_EQ(root.members_live(), kFleet);
  EXPECT_EQ(root.readmissions(), 0u);
  EXPECT_EQ(root.elections(), 0u);
}

// ---------------------------------------------------------------------------
// Membership: killing a leaf prunes it from the live set at the next round
// boundary and rounds resume without it; restarting it (with a bumped
// incarnation) folds it back in at a boundary — aggregates only ever show
// complete membership sets, never a mid-round mixture.
// ---------------------------------------------------------------------------

TEST(SocketTransport, LeafLossPrunesAndRejoinFoldsInAtARoundBoundary) {
  constexpr std::size_t kFleet = 3;
  auto base = root_options(kFleet);
  base.round_deadline_usec = 20'000;
  // Constant power-of-two demands make every membership set's sum unique:
  // {root, leaf1, leaf2} -> 7, {root, leaf1} -> 3. Anything else is a bug.
  coord::SocketTransport root(1, 1, base);
  std::vector<double> root_sums;
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [&](std::uint64_t, const std::vector<double>& sum) {
        root_sums.push_back(sum[0]);
      });
  root.start();

  auto leaf1 = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 1));
  std::vector<double> leaf1_sums;
  leaf1->attach(
      0, [] { return std::vector<double>{2.0}; },
      [&](std::uint64_t, const std::vector<double>& sum) {
        leaf1_sums.push_back(sum[0]);
      });
  leaf1->start();

  auto leaf2 = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 2));
  leaf2->attach(
      0, [] { return std::vector<double>{4.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  leaf2->start();

  // Full fleet first.
  std::int64_t now = 0;
  ASSERT_TRUE(pump_until({&root, leaf1.get(), leaf2.get()}, &now, 500, [&] {
    return !leaf1_sums.empty() && leaf1_sums.back() == 7.0;
  }));
  EXPECT_EQ(root.members_live(), kFleet);

  // Kill leaf 2 abruptly. Within a deadline the open round is abandoned,
  // the next boundary captures the shrunken live set, and rounds *resume*
  // (membership pruning, not staleness) with the smaller sum.
  leaf2->stop();
  leaf2.reset();
  ASSERT_TRUE(pump_until({&root, leaf1.get()}, &now, 2'000, [&] {
    return !leaf1_sums.empty() && leaf1_sums.back() == 3.0;
  }));
  EXPECT_EQ(root.members_live(), kFleet - 1);

  // Restart it as a new process incarnation. The root's session layer sees
  // a rejoin (same process index, higher incarnation) and the next round
  // boundary folds the member back in.
  coord::SocketTransport::Options rejoin_options =
      leaf_options(base, root.listen_port(), 2);
  rejoin_options.incarnation = 2;
  auto leaf2b =
      std::make_unique<coord::SocketTransport>(1, 1, rejoin_options);
  std::vector<double> leaf2b_sums;
  leaf2b->attach(
      0, [] { return std::vector<double>{4.0}; },
      [&](std::uint64_t, const std::vector<double>& sum) {
        leaf2b_sums.push_back(sum[0]);
      });
  leaf2b->start();
  ASSERT_TRUE(
      pump_until({&root, leaf1.get(), leaf2b.get()}, &now, 2'000, [&] {
        return !leaf1_sums.empty() && leaf1_sums.back() == 7.0 &&
               !leaf2b_sums.empty();
      }));
  EXPECT_EQ(root.members_live(), kFleet);
  EXPECT_GE(root.readmissions(), 1u);
  EXPECT_GE(root.reconnects(), 1u);

  // The boundary guarantee, everywhere: every aggregate ever delivered is
  // the sum of a complete captured membership set — 7 or 3, never a blend.
  for (const double sum : root_sums) EXPECT_TRUE(sum == 7.0 || sum == 3.0);
  for (const double sum : leaf1_sums) EXPECT_TRUE(sum == 7.0 || sum == 3.0);
  for (const double sum : leaf2b_sums) EXPECT_EQ(sum, 7.0);

  root.stop();
  leaf1->stop();
  leaf2b->stop();
}

// ---------------------------------------------------------------------------
// Degradation with election disabled: kill the root and the survivors fall
// back to the conservative 1/R regime via the staleness path, exactly like
// the fixed fleet — election off preserves the old failure semantics.
// ---------------------------------------------------------------------------

TEST(SocketTransport, RootLossWithElectionDisabledDegradesToConservative) {
  constexpr std::size_t kFleet = 2;
  auto base = root_options(kFleet);
  base.round_deadline_usec = 20'000;
  base.stale_after_usec = 50'000;

  const test::FixedRateScheduler scheduler({100.0});
  coord::ControlPlaneConfig cp;
  cp.window = 100 * kMillisecond;
  cp.redirector_count = kFleet;

  auto root = std::make_unique<coord::SocketTransport>(1, 1, base);
  root->attach(
      0, [] { return std::vector<double>{1.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  root->start();

  // The survivor hosts a real ControlPlane member, so this also pins the
  // ControlPlane::connect -> attach_stale_handler -> readmit wiring end to
  // end.
  coord::SocketTransport::Options survivor_options =
      leaf_options(base, root->listen_port(), 1);
  survivor_options.election_enabled = false;
  coord::SocketTransport survivor(1, 1, survivor_options);
  coord::ControlPlane plane(&scheduler, cp);
  coord::ControlPlane::Member* member = plane.add_member();
  plane.connect(&survivor);
  survivor.start();

  // Healthy fleet first: one full round must deliver everywhere and pull
  // the member out of the conservative regime.
  std::int64_t now = 0;
  ASSERT_TRUE(pump_until({root.get(), &survivor}, &now, 500,
                         [&] { return member->global().valid; }));

  // Kill the root abruptly. The survivor keeps polling; its redials are
  // refused, but with election disabled it never runs for root — within
  // the staleness budget the fallback fires instead.
  root->stop();
  root.reset();
  ASSERT_TRUE(pump_until({&survivor}, &now, 5'000, [&] {
    return survivor.stale_fallbacks() >= 1 && !member->global().valid;
  }));
  EXPECT_EQ(survivor.elections(), 0u);

  // The next window plans exactly like a never-snapshotted member: the
  // conservative cross-fleet slice audit must hold again.
  plane.end_windows();
  plane.begin_windows(100 * kMillisecond);
  plane.audit_window_slices();

  survivor.stop();
}

// ---------------------------------------------------------------------------
// Election: kill the root and the lowest live member acquires the lease
// once every lower-index peer has refused its dials; the other survivor
// adopts the new root and rounds resume with strictly monotone tags.
// ---------------------------------------------------------------------------

TEST(SocketTransport, RootFailureElectsLowestLiveMember) {
  constexpr std::size_t kFleet = 3;
  // Election requires a full mesh with pre-agreed ports: survivors must be
  // able to dial each other, not just the (dead) root.
  std::vector<std::string> peers;
  for (std::size_t p = 0; p < kFleet; ++p)
    peers.push_back("127.0.0.1:" + std::to_string(pick_port()));

  auto make_options = [&](std::size_t index) {
    coord::SocketTransport::Options options;
    options.peers = peers;
    options.process_index = index;
    options.member_offset = index;
    options.fleet_size = kFleet;
    options.round_period_usec = 1000;
    options.round_deadline_usec = 20'000;
    options.stale_after_usec = 10'000'000;  // staleness must not interfere
    options.lease_ttl_usec = 50'000;
    options.reconnect_base_usec = 1000;
    options.reconnect_max_usec = 8000;
    options.io_timeout_ms = 10;
    return options;
  };

  auto root = std::make_unique<coord::SocketTransport>(1, 1, make_options(0));
  root->attach(
      0, [] { return std::vector<double>{1.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  root->start();
  coord::SocketTransport s1(1, 1, make_options(1));
  std::vector<std::uint64_t> s1_rounds;
  s1.attach(
      0, [] { return std::vector<double>{2.0}; },
      [&](std::uint64_t round, const std::vector<double>&) {
        s1_rounds.push_back(round);
      });
  s1.start();
  coord::SocketTransport s2(1, 1, make_options(2));
  std::vector<std::uint64_t> s2_rounds;
  std::vector<double> s2_sums;
  s2.attach(
      0, [] { return std::vector<double>{4.0}; },
      [&](std::uint64_t round, const std::vector<double>& sum) {
        s2_rounds.push_back(round);
        s2_sums.push_back(sum[0]);
      });
  s2.start();

  std::int64_t now = 0;
  ASSERT_TRUE(pump_until({root.get(), &s1, &s2}, &now, 500,
                         [&] { return s2_rounds.size() >= 2; }));
  EXPECT_EQ(s1.root_index(), 0u);

  // Kill the root. Lease expiry (fake clock) plus a refused dial to every
  // lower-index peer makes survivor 1 — and only survivor 1 — acquire:
  // survivor 2's candidacy is blocked by its live session to survivor 1.
  root->stop();
  root.reset();
  ASSERT_TRUE(pump_until({&s1, &s2}, &now, 2'000, [&] {
    return s1.is_root() && s2.has_root() && s2.root_index() == 1 &&
           s2_sums.size() >= 2 && s2_sums.back() == 6.0;
  })) << "s1 root=" << s1.is_root() << " elections=" << s1.elections()
      << " s2 root_index=" << (s2.has_root() ? s2.root_index() : 999)
      << " deliveries=" << s2_sums.size();
  EXPECT_EQ(s1.elections(), 1u);
  EXPECT_EQ(s2.elections(), 0u);
  EXPECT_GE(s1.lease_incarnation(), 2u);

  // Round tags stayed strictly monotone across the root change (the
  // delivery audit would have thrown otherwise; pin it explicitly too).
  for (std::size_t i = 1; i < s2_rounds.size(); ++i)
    EXPECT_LT(s2_rounds[i - 1], s2_rounds[i]);

  s1.stop();
  s2.stop();
}

// ---------------------------------------------------------------------------
// Incarnation fencing, hand-driven: a deposed root that keeps sending
// round-starts is rejected and answered with the newer lease incarnation;
// a live root that learns of a newer lease steps down.
// ---------------------------------------------------------------------------

TEST(SocketTransport, ZombieRootRoundsAreFencedByIncarnation) {
  constexpr std::size_t kFleet = 3;
  // The follower under test dials nobody (all peers inbound-only); the two
  // rival "roots" are hand-driven sockets.
  coord::SocketTransport::Options options = root_options(kFleet);
  options.process_index = 2;
  options.member_offset = 2;
  coord::SocketTransport follower(1, 1, options);
  follower.attach(
      0, [] { return std::vector<double>{8.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  follower.start();
  std::vector<coord::SocketTransport*> nodes{&follower};
  std::int64_t now = 0;

  // Process 0 introduces itself as the bootstrap root and drives round 1;
  // the follower reports to it.
  RawPeer z0(follower.listen_port());
  z0.hello(0, 1, 0, 1);
  z0.lease(0, 1, 0, 10'000'000);
  ASSERT_TRUE(z0.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kLeaseAck && f.incarnation == 1;
  }));
  EXPECT_EQ(follower.root_index(), 0u);
  z0.round_start(1);
  ASSERT_TRUE(z0.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kReport && f.member == 2 &&
           f.round == 1;
  }));

  // Process 1 takes over with a newer lease; the follower adopts it.
  RawPeer z1(follower.listen_port());
  z1.hello(1, 1, 1, 1);
  z1.lease(1, 2, 1, 10'000'000);
  ASSERT_TRUE(z1.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kLeaseAck && f.incarnation == 2;
  }));
  EXPECT_EQ(follower.root_index(), 1u);
  EXPECT_EQ(follower.lease_incarnation(), 2u);

  // The deposed root keeps driving rounds: rejected, and the answer is a
  // lease-ack carrying incarnation 2 — the fence that makes it step down.
  const std::uint64_t rejected_before = follower.frames_rejected();
  z0.round_start(2);
  ASSERT_TRUE(z0.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kLeaseAck && f.incarnation == 2;
  }));
  EXPECT_GT(follower.frames_rejected(), rejected_before);
  EXPECT_EQ(follower.last_reject_reason(), "round start from non-root");

  follower.stop();
}

TEST(SocketTransport, RootStepsDownWhenANewerLeaseAppears) {
  constexpr std::size_t kFleet = 2;
  coord::SocketTransport root(1, 1, root_options(kFleet));
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  root.start();
  ASSERT_TRUE(root.is_root());
  std::vector<coord::SocketTransport*> nodes{&root};
  std::int64_t now = 0;

  // A hand-driven process 1 joins (completing fleet assembly), then claims
  // a much newer lease. The bootstrap root must step down and follow it —
  // all the way to reporting its own member into the rival's round.
  RawPeer rival(root.listen_port());
  rival.hello(1, 1, 1, 1);
  ASSERT_TRUE(rival.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kRoundStart;
  }));
  rival.lease(1, 5, 50, 10'000'000);
  ASSERT_TRUE(rival.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kLeaseAck && f.incarnation == 5;
  }));
  EXPECT_FALSE(root.is_root());
  EXPECT_TRUE(root.has_root());
  EXPECT_EQ(root.root_index(), 1u);
  EXPECT_EQ(root.lease_incarnation(), 5u);
  rival.round_start(100);
  ASSERT_TRUE(rival.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kReport && f.member == 0 &&
           f.round == 100;
  }));

  root.stop();
}

// ---------------------------------------------------------------------------
// Wire codec rejection table: every malformed shape is a status, never a
// throw, never a crash.
// ---------------------------------------------------------------------------

TEST(SocketTransportWire, EncodeDecodeRoundTrips) {
  coord::wire::Frame frame;
  frame.type = coord::wire::FrameType::kReport;
  frame.round = 0x0123456789abcdefULL;
  frame.member = 7;
  frame.values = {1.5, -0.0, 1e-300};
  coord::wire::Frame out;
  ASSERT_EQ(coord::wire::decode(coord::wire::encode(frame), &out),
            coord::wire::DecodeStatus::kOk);
  EXPECT_EQ(out.type, frame.type);
  EXPECT_EQ(out.round, frame.round);
  EXPECT_EQ(out.member, frame.member);
  EXPECT_EQ(out.values, frame.values);  // bit-exact, -0.0 included
}

TEST(SocketTransportWire, MembershipFramesRoundTripAndHaveAPinnedLayout) {
  for (const auto type :
       {coord::wire::FrameType::kHello, coord::wire::FrameType::kLease,
        coord::wire::FrameType::kLeaseAck}) {
    coord::wire::Frame frame;
    frame.type = type;
    frame.round = 0xfeedfacecafef00dULL;
    frame.member = 3;
    frame.incarnation = 0x1122334455667788ULL;
    frame.aux = (7ULL << 32) | 2ULL;
    const std::string bytes = coord::wire::encode(frame);
    // Membership frames are exactly header (24) + incarnation + aux (16),
    // version 2, count 0 — byte positions pinned so the layout cannot
    // drift without failing here. All fields little-endian.
    ASSERT_EQ(bytes.size(), 40u);
    EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 2u);   // version lo
    EXPECT_EQ(static_cast<unsigned char>(bytes[5]), 0u);   // version hi
    EXPECT_EQ(static_cast<unsigned char>(bytes[6]),
              static_cast<unsigned char>(type));           // type lo
    EXPECT_EQ(static_cast<unsigned char>(bytes[20]), 0u);  // count == 0
    EXPECT_EQ(static_cast<unsigned char>(bytes[24]), 0x88u);  // inc lo byte
    EXPECT_EQ(static_cast<unsigned char>(bytes[31]), 0x11u);  // inc hi byte
    EXPECT_EQ(static_cast<unsigned char>(bytes[32]), 2u);     // aux lo byte
    coord::wire::Frame out;
    ASSERT_EQ(coord::wire::decode(bytes, &out),
              coord::wire::DecodeStatus::kOk);
    EXPECT_EQ(out.type, frame.type);
    EXPECT_EQ(out.round, frame.round);
    EXPECT_EQ(out.member, frame.member);
    EXPECT_EQ(out.incarnation, frame.incarnation);
    EXPECT_EQ(out.aux, frame.aux);
    EXPECT_TRUE(out.values.empty());
  }
}

TEST(SocketTransportWire, MalformedFrameTable) {
  coord::wire::Frame valid;
  valid.type = coord::wire::FrameType::kAggregate;
  valid.round = 42;
  valid.values = {1.0, 2.0};
  const std::string good = coord::wire::encode(valid);

  struct Case {
    const char* name;
    std::string bytes;
    coord::wire::DecodeStatus expected;
  };
  std::vector<Case> cases;
  // Every truncation of a valid frame (header and payload) must be rejected
  // as kTruncated or kSizeMismatch — never accepted, never a crash.
  for (std::size_t len = 0; len < good.size(); ++len) {
    cases.push_back({"truncated", good.substr(0, len),
                     len < 24 ? coord::wire::DecodeStatus::kTruncated
                              : coord::wire::DecodeStatus::kSizeMismatch});
  }
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  cases.push_back({"bad magic", bad_magic,
                   coord::wire::DecodeStatus::kBadMagic});
  std::string bad_version = good;
  bad_version[4] = 9;
  cases.push_back({"bad version", bad_version,
                   coord::wire::DecodeStatus::kBadVersion});
  std::string bad_type = good;
  bad_type[6] = 99;
  cases.push_back({"bad type", bad_type, coord::wire::DecodeStatus::kBadType});
  std::string bad_count = good;
  bad_count[20] = 3;  // claims 3 doubles, carries 2
  cases.push_back({"count too large", bad_count,
                   coord::wire::DecodeStatus::kSizeMismatch});
  std::string extra = good + "trailing-garbage";
  cases.push_back({"trailing bytes", extra,
                   coord::wire::DecodeStatus::kSizeMismatch});

  // The v2 membership shapes get the same treatment.
  coord::wire::Frame lease;
  lease.type = coord::wire::FrameType::kLease;
  lease.round = 7;
  lease.member = 1;
  lease.incarnation = 9;
  lease.aux = 500000;
  const std::string good2 = coord::wire::encode(lease);
  for (std::size_t len = 0; len < good2.size(); ++len) {
    cases.push_back({"truncated lease", good2.substr(0, len),
                     len < 24 ? coord::wire::DecodeStatus::kTruncated
                              : coord::wire::DecodeStatus::kSizeMismatch});
  }
  std::string v2_extra = good2 + "x";
  cases.push_back({"lease trailing byte", v2_extra,
                   coord::wire::DecodeStatus::kSizeMismatch});
  std::string v2_count = good2;
  v2_count[20] = 1;  // membership frames must carry count == 0
  cases.push_back({"lease nonzero count", v2_count,
                   coord::wire::DecodeStatus::kSizeMismatch});
  // Type/version pairing is strict in both directions: a v1 hello and a v2
  // report are confused senders, not forward-compatible frames.
  std::string v1_hello = good2;
  v1_hello[4] = 1;
  cases.push_back({"hello under version 1", v1_hello,
                   coord::wire::DecodeStatus::kBadType});
  std::string v2_report = good;
  v2_report[4] = 2;
  cases.push_back({"report under version 2", v2_report,
                   coord::wire::DecodeStatus::kBadType});
  std::string v2_bad_type = good2;
  v2_bad_type[6] = 7;  // one past kLeaseAck
  cases.push_back({"type out of range", v2_bad_type,
                   coord::wire::DecodeStatus::kBadType});

  for (const Case& c : cases) {
    coord::wire::Frame out;
    EXPECT_EQ(coord::wire::decode(c.bytes, &out), c.expected)
        << c.name << " (" << c.bytes.size() << " bytes)";
  }
}

// ---------------------------------------------------------------------------
// Live rejection: raw malformed bytes injected at a running root must bump
// the reject counters (transport + metrics registry) and leave the protocol
// able to finish rounds with its real peer.
// ---------------------------------------------------------------------------

TEST(SocketTransport, MalformedFramesAreCountedNotFatal) {
  constexpr std::size_t kFleet = 2;
  auto base = root_options(kFleet);
  base.round_deadline_usec = 50'000;
  coord::SocketTransport root(1, 1, base);
  std::uint64_t root_delivered = 0;
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [&](std::uint64_t, const std::vector<double>&) { ++root_delivered; });
  root.start();

  auto leaf = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 1));
  leaf->attach(
      0, [] { return std::vector<double>{2.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  leaf->start();

  // The attacker dials the root like a peer would, but never completes a
  // HELLO handshake — fleet assembly counts handshaken sessions, so the
  // real leaf is still what lets rounds start.
  net::Socket attacker = net::Socket::connect_loopback(root.listen_port());

  std::int64_t now = 0;

  // (a) undecodable bytes inside a well-formed envelope.
  attacker.write_frame("not-a-snapshot-frame-at-all");
  // (b) a structurally valid report — from a connection that never said
  // HELLO, so the session layer drops it before the round logic sees it.
  coord::wire::Frame bogus;
  bogus.type = coord::wire::FrameType::kReport;
  bogus.round = 1;
  bogus.member = 999;
  bogus.values = {0.0};
  attacker.write_frame(coord::wire::encode(bogus));
  // (c) a frame type the root never accepts from an anonymous connection.
  coord::wire::Frame downstream;
  downstream.type = coord::wire::FrameType::kAggregate;
  downstream.round = 1;
  downstream.values = {0.0};
  attacker.write_frame(coord::wire::encode(downstream));

  ASSERT_TRUE(pump_until({&root, leaf.get()}, &now, 500, [&] {
    return root.frames_rejected() >= 3 && root.rounds_completed() >= 1;
  })) << "rejected=" << root.frames_rejected()
      << " completed=" << root.rounds_completed()
      << " last_reason=" << root.last_reject_reason();
  EXPECT_GE(root_delivered, 1u);

  // (d) an oversized length prefix: framing is unrecoverable, the root must
  // drop that connection (and only that connection) and keep running.
  const std::uint32_t huge = 64u << 20;
  std::string prefix;
  for (int i = 0; i < 4; ++i)
    prefix.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  attacker.write_all(prefix);
  const std::uint64_t before = root.rounds_completed();
  ASSERT_TRUE(pump_until({&root, leaf.get()}, &now, 500, [&] {
    return root.frames_rejected() >= 4 && root.rounds_completed() > before;
  })) << "rejected=" << root.frames_rejected()
      << " completed=" << root.rounds_completed() << " before=" << before
      << " abandoned=" << root.rounds_abandoned()
      << " leaf_rejected=" << leaf->frames_rejected()
      << " leaf_reason=" << leaf->last_reject_reason()
      << " last_reason=" << root.last_reject_reason();
  // On a loaded machine a benign reject can land after the oversized one
  // and overwrite the last reason; the dropped-connection check below is
  // what uniquely pins the oversized path.
  EXPECT_TRUE(root.last_reject_reason() == "oversized length prefix" ||
              root.last_reject_reason() == "frame before hello" ||
              root.last_reject_reason() == "stale round tag")
      << root.last_reject_reason();
  // The attacker's socket was shut down by the root.
  attacker.set_read_timeout_ms(200);
  net::ReadResult result = attacker.read_some();
  while (result.status == net::ReadStatus::kData)
    result = attacker.read_some();
  EXPECT_EQ(result.status, net::ReadStatus::kClosed);

  root.stop();
  leaf->stop();
}

// ---------------------------------------------------------------------------
// Stale round tags and duplicate reports at a live root.
// ---------------------------------------------------------------------------

TEST(SocketTransport, StaleAndDuplicateReportsAreRejected) {
  constexpr std::size_t kFleet = 2;
  const auto base = root_options(kFleet);
  coord::SocketTransport root(1, 1, base);
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  root.start();
  std::vector<coord::SocketTransport*> nodes{&root};
  std::int64_t now = 0;

  // A hand-driven "leaf": handshakes like a real process 1, then replays.
  RawPeer peer(root.listen_port());
  peer.hello(1, 1, 1, 1);

  // Wait for round-start 1 (the lease and the kick both arrive; the round
  // number rides on the kick).
  ASSERT_TRUE(peer.read_until(nodes, &now, [](const coord::wire::Frame& f) {
    return f.type == coord::wire::FrameType::kRoundStart && f.round == 1;
  }));

  // Send the member-1 report twice: the first completes the round, the
  // replay must be rejected as a duplicate/stale tag, not crash the root.
  coord::wire::Frame report;
  report.type = coord::wire::FrameType::kReport;
  report.round = 1;
  report.member = 1;
  report.values = {2.0};
  peer.send(report);
  peer.send(report);
  // A report whose vector length disagrees with the fleet's must also fall.
  coord::wire::Frame fat = report;
  fat.round = 2;  // guess the next round so only the size check can reject
  fat.values = {1.0, 2.0};
  peer.send(fat);
  // And a report for a member outside the sender's claimed range: process 1
  // said HELLO for global member 1 only, so member 0 is an impersonation.
  coord::wire::Frame outside = report;
  outside.round = 2;
  outside.member = 0;
  peer.send(outside);

  for (int i = 0; i < 2000 && root.frames_rejected() < 3; ++i) {
    root.poll(now);
    now += 500;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  EXPECT_GE(root.rounds_completed(), 1u);
  EXPECT_GE(root.frames_rejected(), 3u);
  root.stop();
}

// ---------------------------------------------------------------------------
// Star accounting: a completed round costs 2R logical messages fleet-wide.
// ---------------------------------------------------------------------------

TEST(SocketTransport, MessagesSentMirrorsTheStarTree) {
  constexpr std::size_t kFleet = 2;
  const auto base = root_options(kFleet);
  coord::SocketTransport root(1, 1, base);
  root.attach(
      0, [] { return std::vector<double>{1.0}; },
      [](std::uint64_t, const std::vector<double>&) {});
  root.start();
  auto leaf = std::make_unique<coord::SocketTransport>(
      1, 1, leaf_options(base, root.listen_port(), 1));
  std::uint64_t leaf_delivered = 0;
  leaf->attach(
      0, [] { return std::vector<double>{2.0}; },
      [&](std::uint64_t, const std::vector<double>&) { ++leaf_delivered; });
  leaf->start();

  std::int64_t now = 0;
  ASSERT_TRUE(pump_until({&root, leaf.get()}, &now, 500, [&] {
    return root.rounds_completed() >= 3 && leaf_delivered >= 3;
  }));
  root.stop();
  leaf->stop();

  // Every completed round: R reports up + R broadcasts down. Session and
  // lease traffic is control overhead and must not be counted. The root may
  // have opened (sampled for) one extra round that never completed before
  // stop(), so allow exactly one sample's worth of slack per process.
  const std::uint64_t rounds = root.rounds_completed();
  const std::uint64_t fleet_messages =
      root.messages_sent() + leaf->messages_sent();
  EXPECT_GE(fleet_messages, 2 * kFleet * rounds);
  EXPECT_LE(fleet_messages, 2 * kFleet * rounds + kFleet);
}

// ---------------------------------------------------------------------------
// The delivery-side audit: round tags must strictly increase.
// ---------------------------------------------------------------------------

TEST(SocketTransportAudit, RoundTagMonotonePassesAndFires) {
  // Honest histories pass.
  audit::audit_round_tag_monotone(false, 0, 1);
  audit::audit_round_tag_monotone(true, 1, 2);
  audit::audit_round_tag_monotone(true, 2, 7);  // gaps are fine (abandons)

  // A replayed or reordered aggregate fires with an actionable message.
  const std::string msg = violation_message(
      [] { audit::audit_round_tag_monotone(true, 5, 5); });
  EXPECT_NE(msg.find("round-tag-monotone"), std::string::npos) << msg;
  EXPECT_NE(msg.find("replayed or reordered"), std::string::npos) << msg;
  violation_message([] { audit::audit_round_tag_monotone(true, 5, 4); });
}

TEST(SocketTransportAudit, LeaseMonotonePassesAndFires) {
  // Honest histories: first adoption, a refresh, an election handover.
  audit::audit_lease_monotone(false, 0, 0, 1, 0);
  audit::audit_lease_monotone(true, 1, 0, 1, 0);
  audit::audit_lease_monotone(true, 1, 0, 2, 1);

  // A superseded root's lease slipping back through is a regression.
  const std::string regress = violation_message(
      [] { audit::audit_lease_monotone(true, 3, 1, 2, 0); });
  EXPECT_NE(regress.find("lease-monotone"), std::string::npos) << regress;
  // One incarnation naming two roots is split brain.
  const std::string split = violation_message(
      [] { audit::audit_lease_monotone(true, 2, 0, 2, 1); });
  EXPECT_NE(split.find("split brain"), std::string::npos) << split;
}

TEST(SocketTransportAudit, RootAcquirePassesAndFires) {
  // Bootstrap (no lease ever seen) and a post-expiry takeover both pass.
  audit::audit_root_acquire(false, 0, 0, 1, 0);
  audit::audit_root_acquire(true, 1'000'000, 900'000, 2, 1);

  // Acquiring while the observed lease is still live is split brain.
  const std::string live = violation_message(
      [] { audit::audit_root_acquire(true, 100, 900'000, 2, 1); });
  EXPECT_NE(live.find("single-root"), std::string::npos) << live;
  EXPECT_NE(live.find("split brain"), std::string::npos) << live;
  // Acquiring without out-fencing the old incarnation leaves zombies live.
  const std::string fence = violation_message(
      [] { audit::audit_root_acquire(true, 1'000'000, 900'000, 1, 1); });
  EXPECT_NE(fence.find("single-root"), std::string::npos) << fence;
}

TEST(SocketTransport, ReadmitResetsTheSnapshotRoundFence) {
  // readmit() — what the transport's stale handler now calls — must both
  // drop the member to the conservative regime and reset the round-
  // monotonicity fence, so the first aggregate from a *new* transport epoch
  // (a restarted process, a newly elected root with lower round numbers)
  // is adopted as the new fence base instead of tripping the replay audit.
  const test::FixedRateScheduler scheduler({100.0});
  coord::ControlPlaneConfig cp;
  cp.redirector_count = 2;
  coord::ControlPlane plane(&scheduler, cp);
  coord::ControlPlane::Member* member = plane.add_member();

  member->receive_global(10, {1.0});
  EXPECT_TRUE(member->global().valid);
  member->readmit();
  EXPECT_FALSE(member->global().valid);
  // Round 3 < 10: legal only because the fence was reset (under an audit
  // build this call would otherwise throw coord.snapshot-round-monotone).
  member->receive_global(3, {2.0});
  EXPECT_TRUE(member->global().valid);
  // invalidate_global() alone keeps the fence: staleness without a transport
  // epoch change still audits against the old sequence.
  member->invalidate_global();
  EXPECT_FALSE(member->global().valid);
  member->receive_global(4, {2.5});
  EXPECT_TRUE(member->global().valid);
}

TEST(SocketTransport, RejectsNonLoopbackPeers) {
  coord::SocketTransport::Options options;
  options.peers = {"10.0.0.1:7000", "10.0.0.2:7000"};
  const std::string msg = violation_message([&] {
    coord::SocketTransport transport(1, 1, options);
    transport.start();
  });
  EXPECT_NE(msg.find("loopback"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allow_nonlocal"), std::string::npos) << msg;
}

TEST(SocketTransport, AllowNonlocalLiftsTheLoopbackRestriction) {
  coord::SocketTransport::Options options;
  options.peers = {"10.0.0.1:7000", "10.0.0.2:7000"};
  options.process_index = 1;
  options.member_offset = 1;
  options.allow_nonlocal = true;
  // Constructing validates every peer entry; with the flag set, non-local
  // numeric IPv4 peers are accepted. (Not started: 10.0.0.0/8 is not
  // routable from the test environment.)
  EXPECT_NO_THROW(coord::SocketTransport transport(1, 1, options));
}

}  // namespace
}  // namespace sharegrid
