// Unit tests for the L4 packet model and NAT connection table.
#include <gtest/gtest.h>

#include "l4/connection_table.hpp"
#include "l4/packet.hpp"

namespace sharegrid::l4 {
namespace {

const Endpoint kClient{100, 5000};
const Endpoint kClient2{100, 5001};
const Endpoint kVip{10, 80};
const Endpoint kServerA{200, 80};
const Endpoint kServerB{201, 80};

TEST(ConnectionTable, EstablishLookupRelease) {
  ConnectionTable table;
  EXPECT_FALSE(table.lookup(kClient, kVip).has_value());

  table.establish(kClient, kVip, kServerA);
  ASSERT_TRUE(table.lookup(kClient, kVip).has_value());
  EXPECT_EQ(*table.lookup(kClient, kVip), kServerA);
  EXPECT_EQ(table.active_connections(), 1u);

  table.release(kClient, kVip);
  EXPECT_FALSE(table.lookup(kClient, kVip).has_value());
  EXPECT_EQ(table.active_connections(), 0u);
}

TEST(ConnectionTable, ReleaseIsIdempotent) {
  ConnectionTable table;
  table.release(kClient, kVip);  // no-op on empty table
  table.establish(kClient, kVip, kServerA);
  table.release(kClient, kVip);
  table.release(kClient, kVip);
  EXPECT_EQ(table.active_connections(), 0u);
}

TEST(ConnectionTable, FlowsAreKeyedByFullClientEndpoint) {
  ConnectionTable table;
  table.establish(kClient, kVip, kServerA);
  table.establish(kClient2, kVip, kServerB);
  EXPECT_EQ(*table.lookup(kClient, kVip), kServerA);
  EXPECT_EQ(*table.lookup(kClient2, kVip), kServerB);
}

TEST(ConnectionTable, AffinityHintSurvivesRelease) {
  // SSL-style persistence: a later connection from the same client endpoint
  // prefers the server that handled the previous one.
  ConnectionTable table;
  table.establish(kClient, kVip, kServerB);
  table.release(kClient, kVip);
  ASSERT_TRUE(table.affinity_hint(kClient, kVip).has_value());
  EXPECT_EQ(*table.affinity_hint(kClient, kVip), kServerB);
  // A different client port has no hint.
  EXPECT_FALSE(table.affinity_hint(kClient2, kVip).has_value());
}

TEST(ConnectionTable, AffinityTracksLatestServer) {
  ConnectionTable table;
  table.establish(kClient, kVip, kServerA);
  table.release(kClient, kVip);
  table.establish(kClient, kVip, kServerB);
  EXPECT_EQ(*table.affinity_hint(kClient, kVip), kServerB);
}

TEST(ConnectionTable, ForwardRewriteSetsServerDestination) {
  Packet syn;
  syn.kind = PacketKind::kSyn;
  syn.src = kClient;
  syn.dst = kVip;
  const Packet out = ConnectionTable::rewrite_to_server(syn, kServerA);
  EXPECT_EQ(out.dst, kServerA);
  EXPECT_EQ(out.src, kClient);  // source untouched on the forward path (NAT)
}

TEST(ConnectionTable, ReverseRewriteMasksServerBehindVip) {
  Packet reply;
  reply.kind = PacketKind::kData;
  reply.src = kServerA;
  reply.dst = kClient;
  const Packet out = ConnectionTable::rewrite_to_client(reply, kVip, kClient);
  EXPECT_EQ(out.src, kVip);  // client only ever sees the virtual address
  EXPECT_EQ(out.dst, kClient);
}

TEST(Endpoint, OrderingAndEquality) {
  EXPECT_EQ(kClient, (Endpoint{100, 5000}));
  EXPECT_NE(kClient, kClient2);
  EXPECT_LT(kClient, kClient2);
  EXPECT_LT(kVip, kClient);
}

TEST(Endpoint, ToStringFormat) {
  EXPECT_EQ(to_string(kClient), "h100:5000");
}

}  // namespace
}  // namespace sharegrid::l4
