// Unit tests for the multi-resource extension (§3.1.1 vector quantities).
#include <gtest/gtest.h>

#include <array>

#include "core/multi_resource.hpp"
#include "util/assert.hpp"

namespace sharegrid::core {
namespace {

/// A owns (1000 cpu, 100 net); B owns (1500 cpu, 50 net);
/// A -> B [0.4, 0.6] as in Figure 3 (restricted to two principals).
struct Fixture {
  AgreementGraph graph;
  MultiResourceLevels levels;

  Fixture() : levels(make()) {}

  MultiResourceLevels make() {
    const auto a = graph.add_principal("A", 0.0);
    const auto b = graph.add_principal("B", 0.0);
    graph.set_agreement(a, b, 0.4, 0.6);
    Matrix caps(2, 2, 0.0);
    caps(0, 0) = 1000.0;  // A cpu
    caps(0, 1) = 100.0;   // A net
    caps(1, 0) = 1500.0;  // B cpu
    caps(1, 1) = 50.0;    // B net
    return MultiResourceLevels::compute(graph, {"cpu", "net"}, caps);
  }
};

TEST(MultiResource, PerDimensionLevelsMatchScalarAnalysis) {
  Fixture f;
  ASSERT_EQ(f.levels.resource_count(), 2u);
  EXPECT_EQ(f.levels.resource_name(0), "cpu");

  // cpu: MC_A = 1000 * 0.6 = 600; MC_B = 1500 + 400 = 1900.
  EXPECT_NEAR(f.levels.resource(0).mandatory_capacity[0], 600.0, 1e-9);
  EXPECT_NEAR(f.levels.resource(0).mandatory_capacity[1], 1900.0, 1e-9);
  // net: MC_A = 100 * 0.6 = 60; MC_B = 50 + 40 = 90.
  EXPECT_NEAR(f.levels.resource(1).mandatory_capacity[0], 60.0, 1e-9);
  EXPECT_NEAR(f.levels.resource(1).mandatory_capacity[1], 90.0, 1e-9);
}

TEST(MultiResource, BottleneckRateIsMinAcrossDimensions) {
  Fixture f;
  // A request class consuming 1 cpu and 0.2 net per request:
  // A: min(600 / 1, 60 / 0.2 = 300) = 300 -> net-bound.
  const std::array<double, 2> demand{1.0, 0.2};
  EXPECT_NEAR(f.levels.mandatory_rate(0, demand), 300.0, 1e-9);
  EXPECT_EQ(f.levels.bottleneck(0, demand), 1u);

  // A cpu-heavy class: 4 cpu, 0.01 net: min(150, 6000) -> cpu-bound.
  const std::array<double, 2> cpu_heavy{4.0, 0.01};
  EXPECT_NEAR(f.levels.mandatory_rate(0, cpu_heavy), 150.0, 1e-9);
  EXPECT_EQ(f.levels.bottleneck(0, cpu_heavy), 0u);
}

TEST(MultiResource, BestEffortUsesOptionalCapacity) {
  Fixture f;
  // A's optional: cpu 400 (reclaim), net 40. Best-effort cpu rate at 1 cpu
  // per request: 600 + 400 = 1000.
  const std::array<double, 2> cpu_only{1.0, 0.0};
  EXPECT_NEAR(f.levels.best_effort_rate(0, cpu_only), 1000.0, 1e-9);
  EXPECT_GE(f.levels.best_effort_rate(0, cpu_only),
            f.levels.mandatory_rate(0, cpu_only));
}

TEST(MultiResource, ZeroDemandDimensionsDoNotConstrain) {
  Fixture f;
  const std::array<double, 2> net_only{0.0, 1.0};
  EXPECT_NEAR(f.levels.mandatory_rate(0, net_only), 60.0, 1e-9);
}

TEST(MultiResource, SingleResourceDegeneratesToScalar) {
  AgreementGraph g;
  const auto a = g.add_principal("A", 1000.0);
  const auto b = g.add_principal("B", 500.0);
  g.set_agreement(a, b, 0.3, 0.5);
  Matrix caps(2, 1, 0.0);
  caps(0, 0) = 1000.0;
  caps(1, 0) = 500.0;
  const auto multi = MultiResourceLevels::compute(g, {"only"}, caps);
  const auto scalar = compute_access_levels(g);
  for (PrincipalId p = 0; p < 2; ++p) {
    EXPECT_NEAR(multi.resource(0).mandatory_capacity[p],
                scalar.mandatory_capacity[p], 1e-12);
    EXPECT_NEAR(multi.resource(0).optional_capacity[p],
                scalar.optional_capacity[p], 1e-12);
  }
}

TEST(MultiResource, ValidatesInputs) {
  AgreementGraph g;
  g.add_principal("A", 0.0);
  Matrix wrong_rows(2, 1, 1.0);
  EXPECT_THROW(MultiResourceLevels::compute(g, {"x"}, wrong_rows),
               ContractViolation);
  Matrix ok(1, 1, 1.0);
  EXPECT_THROW(MultiResourceLevels::compute(g, {}, ok), ContractViolation);

  const auto levels = MultiResourceLevels::compute(g, {"x"}, ok);
  const std::array<double, 1> none{0.0};
  EXPECT_THROW(levels.mandatory_rate(0, none), ContractViolation);
  const std::array<double, 2> wrong_size{1.0, 1.0};
  EXPECT_THROW(levels.mandatory_rate(0, wrong_size), ContractViolation);
}

}  // namespace
}  // namespace sharegrid::core
