// Equivalence suite for the sparse revised simplex (lp/solve_context.cpp).
//
// The production engine keeps B^-1 as a product-form eta file over CSC column
// storage; this file re-implements the *dense tableau* engine it replaced
// (explicit B^-1 * A maintained by full-row elimination) as a reference, and
// drives both over randomly generated bounded instances. Storing each eta as
// the FTRAN image of its entering column makes eta application replicate
// dense elimination float-for-float, so with refactorization disabled the two
// engines must walk the *same pivot sequence* — the suite asserts pivot
// counts, bound-flip counts, and final bases exactly, and plans to 1e-9.
// Refactorization intentionally reorders eliminations (partial pivoting, row
// permutation), so separate tests bound its drift by objective instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "lp/solve_context.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace sharegrid::lp {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// ---------------------------------------------------------------------------
// Dense reference engine: the pre-revised-simplex tableau solver, cold path
// only (warm equivalence is covered by solving each instance fresh). Pricing,
// ratio test, tie-breaks, bound flips, phase-1 artificial handling, and
// redundancy clearing are kept identical to the production engine so the two
// trajectories are comparable pivot-for-pivot.
// ---------------------------------------------------------------------------

struct DenseTableau {
  Matrix a;                        // m x cols, B^-1 * A_std
  std::vector<double> rhs;         // m, value of the basic var in each row
  std::vector<std::size_t> basis;  // m, column basic in each row
  std::vector<double> upper;       // per column; kInfinity when unbounded
  std::vector<std::uint8_t> at_upper;

  std::size_t rows() const { return rhs.size(); }
  std::size_t cols() const { return a.cols(); }
};

struct DenseResult {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::vector<std::size_t> basis;
  std::uint64_t pivots = 0;
  std::uint64_t bound_flips = 0;
};

void dense_pivot(DenseTableau& t, std::size_t row, std::size_t col) {
  const std::size_t cols = t.cols();
  double* pr = t.a.row(row);
  const double p = pr[col];
  const double inv = 1.0 / p;
  for (std::size_t j = 0; j < cols; ++j) pr[j] *= inv;
  pr[col] = 1.0;
  for (std::size_t i = 0; i < t.rows(); ++i) {
    if (i == row) continue;
    double* ri = t.a.row(i);
    const double factor = ri[col];
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < cols; ++j) ri[j] -= factor * pr[j];
    ri[col] = 0.0;
  }
  t.basis[row] = col;
}

void dense_reduced_costs(const DenseTableau& t, const std::vector<double>& c,
                         std::vector<double>& d) {
  d.assign(c.begin(), c.end());
  for (std::size_t i = 0; i < t.rows(); ++i) {
    const double cb = c[t.basis[i]];
    if (cb == 0.0) continue;
    const double* row = t.a.row(i);
    for (std::size_t j = 0; j < d.size(); ++j) d[j] -= cb * row[j];
  }
}

double dense_objective(const DenseTableau& t, const std::vector<double>& c) {
  double z = 0.0;
  for (std::size_t i = 0; i < t.rows(); ++i) z += c[t.basis[i]] * t.rhs[i];
  for (std::size_t j = 0; j < t.cols(); ++j)
    if (t.at_upper[j] && c[j] != 0.0) z += c[j] * t.upper[j];
  return z;
}

enum class DensePhase { kOptimal, kUnbounded, kIterationLimit };

// Bounded-variable primal simplex to optimality for @p costs (maximize),
// columns >= col_limit locked out. Incremental pricing with no periodic
// refresh: the production engine refreshes only at refactorization, so with
// refactorization disabled this matches its reduced-cost stream exactly.
DensePhase dense_simplex(DenseTableau& t, const std::vector<double>& costs,
                         std::size_t col_limit, const SolverOptions& opt,
                         std::vector<double>& d, std::vector<double>& col,
                         DenseResult& stats) {
  dense_reduced_costs(t, costs, d);
  col.resize(t.rows());
  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    const bool bland = iter >= opt.bland_after;
    std::size_t enter = kNone;
    double best = opt.tolerance;
    for (std::size_t j = 0; j < col_limit; ++j) {
      const double gain = t.at_upper[j] ? -d[j] : d[j];
      if (gain <= opt.tolerance || t.upper[j] == 0.0) continue;
      if (bland) {
        enter = j;
        break;
      }
      if (gain > best) {
        best = gain;
        enter = j;
      }
    }
    if (enter == kNone) return DensePhase::kOptimal;
    const double dir = t.at_upper[enter] ? -1.0 : 1.0;

    double col_max = 0.0;
    for (std::size_t i = 0; i < t.rows(); ++i) {
      col[i] = t.a.row(i)[enter];
      col_max = std::max(col_max, std::abs(col[i]));
    }

    const double drop = opt.tolerance * col_max;
    std::size_t leave = kNone;
    bool leave_at_upper = false;
    double best_ratio = t.upper[enter];
    for (std::size_t i = 0; i < t.rows(); ++i) {
      if (std::abs(col[i]) <= drop) continue;
      const double step = dir * col[i];
      if (step > 0.0) {
        const double ratio = t.rhs[i] / step;
        if (ratio < best_ratio ||
            (ratio == best_ratio &&
             (leave == kNone || t.basis[i] < t.basis[leave]))) {
          best_ratio = ratio;
          leave = i;
          leave_at_upper = false;
        }
      } else {
        const double ub = t.upper[t.basis[i]];
        if (!std::isfinite(ub)) continue;
        const double ratio = (ub - t.rhs[i]) / (-step);
        if (ratio < best_ratio ||
            (ratio == best_ratio &&
             (leave == kNone || t.basis[i] < t.basis[leave]))) {
          best_ratio = ratio;
          leave = i;
          leave_at_upper = true;
        }
      }
    }
    if (leave == kNone && !std::isfinite(best_ratio))
      return DensePhase::kUnbounded;

    if (leave == kNone) {
      for (std::size_t i = 0; i < t.rows(); ++i)
        t.rhs[i] -= dir * col[i] * best_ratio;
      t.at_upper[enter] ^= 1;
      ++stats.bound_flips;
      continue;
    }

    const std::size_t leaving = t.basis[leave];
    for (std::size_t i = 0; i < t.rows(); ++i)
      t.rhs[i] -= dir * col[i] * best_ratio;
    const double enter_value =
        (t.at_upper[enter] ? t.upper[enter] : 0.0) + dir * best_ratio;
    t.at_upper[leaving] = leave_at_upper ? 1 : 0;
    t.at_upper[enter] = 0;
    dense_pivot(t, leave, enter);
    t.rhs[leave] = enter_value;
    ++stats.pivots;

    const double dq = d[enter];
    if (dq != 0.0) {
      const double* pr = t.a.row(leave);
      for (std::size_t j = 0; j < d.size(); ++j) d[j] -= dq * pr[j];
    }
    d[enter] = 0.0;
  }
  return DensePhase::kIterationLimit;
}

DenseResult dense_solve(const Problem& problem, const SolverOptions& opt) {
  DenseResult out;
  PreparedProblem prep;
  prepare(problem, prep);

  const std::size_t n = prep.num_vars;
  const std::size_t m = prep.num_rows;
  DenseTableau t;
  t.a.assign(m, prep.cols, 0.0);
  t.rhs = prep.rhs;
  t.basis.assign(m, kNone);
  t.upper.assign(prep.cols, kInfinity);
  for (std::size_t j = 0; j < n; ++j) t.upper[j] = prep.upper[j];
  t.at_upper.assign(prep.cols, 0);
  for (std::size_t i = 0; i < m; ++i) {
    double* row = t.a.row(i);
    for (std::uint32_t k = prep.row_begin[i]; k < prep.row_begin[i + 1]; ++k)
      row[prep.term_var[k]] += prep.coeffs[k];
    if (prep.slack_col[i] != kNoColumn)
      row[prep.slack_col[i]] = prep.slack_sign[i];
    if (prep.art_col[i] != kNoColumn) row[prep.art_col[i]] = 1.0;
    t.basis[i] = prep.unit_col[i];
  }

  std::vector<double> d;
  std::vector<double> col;
  std::vector<double> phase1_costs;
  if (prep.num_artificial > 0) {
    phase1_costs.assign(prep.cols, 0.0);
    for (std::size_t j = prep.first_artificial; j < prep.cols; ++j)
      phase1_costs[j] = -1.0;
    const DensePhase r =
        dense_simplex(t, phase1_costs, prep.cols, opt, d, col, out);
    if (r == DensePhase::kIterationLimit) {
      out.status = Status::kIterationLimit;
      return out;
    }
    if (dense_objective(t, phase1_costs) < -1e-7) {
      out.status = Status::kInfeasible;
      return out;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis[i] < prep.first_artificial) continue;
      bool pivoted = false;
      for (std::size_t j = 0; j < prep.first_artificial; ++j) {
        const double p = t.a.row(i)[j];
        if (std::abs(p) > 1e-7) {
          const double dir = t.at_upper[j] ? -1.0 : 1.0;
          const double step = t.rhs[i] / (dir * p);
          for (std::size_t rr = 0; rr < m; ++rr) col[rr] = t.a.row(rr)[j];
          for (std::size_t rr = 0; rr < m; ++rr)
            t.rhs[rr] -= dir * col[rr] * step;
          const double enter_value =
              (t.at_upper[j] ? t.upper[j] : 0.0) + dir * step;
          t.at_upper[j] = 0;
          dense_pivot(t, i, j);
          t.rhs[i] = enter_value;
          ++out.pivots;
          pivoted = true;
          break;
        }
      }
      if (!pivoted) {
        double* row = t.a.row(i);
        for (std::size_t j = 0; j < prep.first_artificial; ++j) row[j] = 0.0;
        t.rhs[i] = 0.0;
      }
    }
  }

  const DensePhase r =
      dense_simplex(t, prep.costs, prep.first_artificial, opt, d, col, out);
  if (r == DensePhase::kIterationLimit) {
    out.status = Status::kIterationLimit;
    return out;
  }
  if (r == DensePhase::kUnbounded) {
    out.status = Status::kUnbounded;
    return out;
  }

  out.status = Status::kOptimal;
  out.values.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    if (t.at_upper[j]) out.values[j] = prep.upper[j];
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t b = t.basis[i];
    if (b >= n) continue;
    double v = std::max(0.0, t.rhs[i]);
    if (std::isfinite(prep.upper[b])) v = std::min(v, prep.upper[b]);
    out.values[b] = v;
  }
  const auto& lo = problem.lower_bounds();
  double objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] += lo[j];
    objective += problem.objective()[j] * out.values[j];
  }
  out.objective = objective;
  out.basis = t.basis;
  return out;
}

// ---------------------------------------------------------------------------
// Random bounded instances. Deterministic (Rng per D4): the same seed always
// yields the same instance, so any divergence reproduces exactly.
// ---------------------------------------------------------------------------

// Rows are anchored to a hidden feasible point x*: each right-hand side is
// the row's value at x* plus (<=) or minus (>=) slack, or exactly it (==).
// Without the anchor the probability that m random rows are simultaneously
// satisfiable collapses as n grows and the sweep degenerates into a phase-1
// infeasibility test. A small fraction of instances (the `spoil` branch)
// still gets a detached right-hand side so both engines' infeasible and
// unbounded paths stay compared too.
Problem random_problem(Rng& rng, std::size_t n) {
  Problem p(n, Sense::kMaximize);
  std::vector<double> anchor(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform() < 0.3 ? rng.uniform(0.0, 2.0) : 0.0;
    const double shape = rng.uniform();
    double hi;
    if (shape < 0.15) {
      hi = lo;  // fixed variable: zero-width box, must never enter
    } else if (shape < 0.6) {
      hi = lo + rng.uniform(0.5, 5.0);
    } else {
      hi = kInfinity;
    }
    p.set_bounds(j, lo, hi);
    p.set_objective(j, rng.uniform() < 0.2 ? rng.uniform(-2.0, 0.0)
                                           : rng.uniform(0.1, 3.0));
    const double reach = std::isfinite(hi) ? hi - lo : 3.0;
    anchor[j] = lo + rng.uniform(0.0, std::min(reach, 3.0));
  }

  const std::size_t m = n / 2 + 2;
  // Spoil at most one row in a minority of instances — per-row spoiling
  // would make nearly every large instance infeasible.
  const std::size_t spoil_row =
      rng.uniform() < 0.15 ? static_cast<std::size_t>(rng() % m) : m;
  std::vector<char> used(n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t width = std::min<std::size_t>(6, n);
    std::size_t k =
        2 + static_cast<std::size_t>(rng.uniform() * double(width - 1));
    k = std::min(k, n);
    std::fill(used.begin(), used.end(), 0);
    std::vector<std::pair<std::size_t, double>> terms;
    double at_anchor = 0.0;
    while (terms.size() < k) {
      const std::size_t var = static_cast<std::size_t>(rng() % n);
      if (used[var]) continue;
      used[var] = 1;
      const double coeff = rng.uniform() < 0.2 ? rng.uniform(-3.0, -0.5)
                                               : rng.uniform(0.5, 3.0);
      at_anchor += coeff * anchor[var];
      terms.emplace_back(var, coeff);
    }
    const bool spoil = i == spoil_row;
    const double kind = rng.uniform();
    if (kind < 0.65) {
      const double rhs = spoil ? rng.uniform(-6.0, 0.0)
                               : at_anchor + rng.uniform(0.0, 3.0);
      p.add_constraint(std::move(terms), Relation::kLessEq, rhs);
    } else if (kind < 0.9) {
      const double rhs = spoil ? at_anchor + rng.uniform(4.0, 9.0)
                               : at_anchor - rng.uniform(0.0, 3.0);
      p.add_constraint(std::move(terms), Relation::kGreaterEq, rhs);
    } else {
      const double rhs =
          spoil ? at_anchor + rng.uniform(3.0, 7.0) : at_anchor;
      p.add_constraint(std::move(terms), Relation::kEqual, rhs);
    }
  }
  // Aggregate capacity row: keeps most instances bounded so the sweep spends
  // its pivots on optimality, not on detecting unboundedness.
  if (rng.uniform() < 0.9) {
    double total = 0.0;
    for (const double v : anchor) total += v;
    std::vector<std::pair<std::size_t, double>> all;
    for (std::size_t j = 0; j < n; ++j) all.emplace_back(j, 1.0);
    p.add_constraint(std::move(all), Relation::kLessEq,
                     total + rng.uniform(0.0, double(n) / 4.0));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Property suite: dense and revised engines agree pivot-for-pivot when
// refactorization is disabled.
// ---------------------------------------------------------------------------

void expect_equivalent(std::size_t n, std::size_t instances,
                       std::uint64_t seed_base) {
  SolverOptions opt;
  opt.refactor_interval = 0;  // identity sweep: no elimination reordering
  std::size_t optimal_count = 0;
  for (std::size_t t = 0; t < instances; ++t) {
    Rng rng(seed_base + t);
    const Problem p = random_problem(rng, n);
    const DenseResult ref = dense_solve(p, opt);

    SolveContext ctx;
    const Solution got = ctx.solve(p, opt);
    ASSERT_EQ(got.status, ref.status) << "n=" << n << " instance=" << t;
    EXPECT_EQ(ctx.stats().pivots, ref.pivots) << "n=" << n << " inst=" << t;
    EXPECT_EQ(ctx.stats().bound_flips, ref.bound_flips)
        << "n=" << n << " inst=" << t;
    if (ref.status != Status::kOptimal) continue;
    ++optimal_count;
    ASSERT_EQ(got.basis, ref.basis) << "n=" << n << " instance=" << t;
    ASSERT_EQ(got.values.size(), ref.values.size());
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(got.values[j], ref.values[j], 1e-9)
          << "n=" << n << " instance=" << t << " var=" << j;
    EXPECT_NEAR(got.objective, ref.objective,
                1e-9 * (1.0 + std::abs(ref.objective)));
    EXPECT_NO_THROW(audit::audit_lp_solution(p, got, /*tol=*/1e-5));
  }
  // The sweep is only meaningful if it actually exercises optimal pivoting.
  EXPECT_GE(2 * optimal_count, instances) << "n=" << n;
}

TEST(RevisedSimplex, MatchesDenseReferenceN4) {
  expect_equivalent(4, 40, 0xA400);
}

TEST(RevisedSimplex, MatchesDenseReferenceN16) {
  expect_equivalent(16, 30, 0xB1600);
}

TEST(RevisedSimplex, MatchesDenseReferenceN64) {
  expect_equivalent(64, 12, 0xC6400);
}

// ---------------------------------------------------------------------------
// Refactorization drift: rebuilding the eta file reorders eliminations
// (partial pivoting may permute rows), so trajectories can differ in the last
// ulps — but the optimum must not move and the invariant cross-check
// (audit_eta_consistency in audit builds) must stay quiet.
// ---------------------------------------------------------------------------

TEST(RevisedSimplex, RefactorizationDoesNotMoveTheOptimum) {
  for (std::size_t interval = 1; interval <= 4; ++interval) {
    std::size_t refactored_solves = 0;
    for (std::size_t t = 0; t < 12; ++t) {
      Rng rng(0xD0000 + t);
      const Problem p = random_problem(rng, 24);

      SolverOptions base;
      base.refactor_interval = 0;
      SolveContext plain;
      const Solution ref = plain.solve(p, base);

      SolverOptions churn;
      churn.refactor_interval = interval;
      SolveContext ctx;
      const Solution got = ctx.solve(p, churn);

      ASSERT_EQ(got.status, ref.status) << "interval=" << interval
                                        << " instance=" << t;
      if (ctx.stats().refactorizations > 0) ++refactored_solves;
      if (ref.status != Status::kOptimal) continue;
      EXPECT_NEAR(got.objective, ref.objective,
                  1e-7 * (1.0 + std::abs(ref.objective)))
          << "interval=" << interval << " instance=" << t;
      EXPECT_NO_THROW(audit::audit_lp_solution(p, got, /*tol=*/1e-5));
    }
    EXPECT_GT(refactored_solves, 0u) << "interval=" << interval;
  }
}

// ---------------------------------------------------------------------------
// Warm re-entry across a refactorization boundary: the cached basis the warm
// path re-enters from was (partly) rebuilt by refactorize(), and the warm
// solve itself refactorizes again mid-stream. Counters and answers must both
// survive.
// ---------------------------------------------------------------------------

TEST(RevisedSimplex, WarmReentryAcrossRefactorizationBoundary) {
  // A layout-stable window family (all lower bounds zero, every right-hand
  // side positive, so the prepare() sign-flip pattern never changes between
  // windows): 16 pair-capacity rows, 4 coupling >= rows that force a real
  // phase 1, and a coefficient knob on x_0 to exercise column repair.
  constexpr std::size_t kVars = 32;
  auto build = [](double cap, double floor_rhs, double x0_coeff) {
    Problem p(kVars, Sense::kMaximize);
    for (std::size_t j = 0; j < kVars; ++j) {
      p.set_objective(j, 1.0 + static_cast<double>(j % 7) * 0.3);
      p.set_bounds(j, 0.0, (j % 2 == 0) ? 3.0 : kInfinity);
    }
    for (std::size_t i = 0; i < 16; ++i) {
      const double c0 = (i == 0) ? x0_coeff : 1.0;
      p.add_constraint({{2 * i, c0}, {2 * i + 1, 2.0}}, Relation::kLessEq,
                       cap);
    }
    for (std::size_t g = 0; g < 4; ++g) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t j = 8 * g; j < 8 * (g + 1); ++j)
        terms.emplace_back(j, 1.0);
      p.add_constraint(std::move(terms), Relation::kGreaterEq, floor_rhs);
    }
    return p;
  };

  SolverOptions opt;
  opt.refactor_interval = 4;  // force several rebuilds per solve
  SolveContext ctx;
  const Solution cold = ctx.solve(build(4.0, 1.0, 1.0), opt);
  ASSERT_EQ(cold.status, Status::kOptimal);
  ASSERT_GT(ctx.stats().refactorizations, 0u);
  const std::uint64_t refactors_after_cold = ctx.stats().refactorizations;

  // Next window: tighter capacities and floors, and a changed x_0 column —
  // the warm path must repair that column *through the refactored eta file*
  // and recover primal feasibility from the shrunken right-hand sides.
  const Problem second = build(3.7, 0.9, 1.25);
  const Solution warm = ctx.solve(second, opt);
  ASSERT_EQ(warm.status, Status::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(ctx.stats().warm_solves, 1u);
  EXPECT_GE(ctx.stats().refactorizations, refactors_after_cold);

  // The warm answer must match a from-scratch dense solve of the new window.
  SolverOptions dense_opt;
  dense_opt.refactor_interval = 0;
  const DenseResult ref = dense_solve(second, dense_opt);
  ASSERT_EQ(ref.status, Status::kOptimal);
  EXPECT_NEAR(warm.objective, ref.objective,
              1e-7 * (1.0 + std::abs(ref.objective)));
  EXPECT_NO_THROW(audit::audit_lp_solution(second, warm, /*tol=*/1e-5));
}

// ---------------------------------------------------------------------------
// Bound flips in FTRAN: nonbasic-at-upper columns never materialize in the
// eta file, so the warm path's rhs recompute must subtract them in row space
// *before* the FTRAN. A problem whose optimum is reached through flips, then
// re-solved warm with a tighter capacity, exercises exactly that order.
// ---------------------------------------------------------------------------

TEST(RevisedSimplex, BoundFlipsSurviveWarmRhsRecompute) {
  // max 3x + 2y + z  st  x + y + z <= 2.5, 0 <= each <= 1.
  // Dantzig pricing flips x then y to their upper bounds (flip distance 1
  // beats the row ratio) and pivots z in at 0.5.
  auto build = [](double cap) {
    Problem p(3, Sense::kMaximize);
    p.set_objective(0, 3.0);
    p.set_objective(1, 2.0);
    p.set_objective(2, 1.0);
    for (std::size_t j = 0; j < 3; ++j) p.set_bounds(j, 0.0, 1.0);
    p.add_constraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Relation::kLessEq, cap);
    return p;
  };

  SolveContext ctx;
  const Solution cold = ctx.solve(build(2.5));
  ASSERT_EQ(cold.status, Status::kOptimal);
  EXPECT_GE(ctx.stats().bound_flips, 2u);
  EXPECT_NEAR(cold.values[0], 1.0, 1e-9);
  EXPECT_NEAR(cold.values[1], 1.0, 1e-9);
  EXPECT_NEAR(cold.values[2], 0.5, 1e-9);

  // Warm re-solve with a tighter capacity: x and y are still nonbasic at
  // their upper bounds, so compute_basic_values must subtract both columns
  // from the new rhs before running it through the eta file; z's basic value
  // drops to 0.3 without any repair pivots.
  const Solution warm = ctx.solve(build(2.3));
  ASSERT_EQ(warm.status, Status::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(ctx.stats().warm_solves, 1u);
  EXPECT_NEAR(warm.values[0], 1.0, 1e-9);
  EXPECT_NEAR(warm.values[1], 1.0, 1e-9);
  EXPECT_NEAR(warm.values[2], 0.3, 1e-9);
  EXPECT_NEAR(warm.objective, 5.3, 1e-9);

  // Cross-check against the dense reference on the tightened instance.
  SolverOptions opt;
  opt.refactor_interval = 0;
  const DenseResult ref = dense_solve(build(2.3), opt);
  ASSERT_EQ(ref.status, Status::kOptimal);
  EXPECT_NEAR(warm.objective, ref.objective, 1e-9);
}

}  // namespace
}  // namespace sharegrid::lp
