// Direct unit tests for the Metrics hub and the Plan value type.
#include <gtest/gtest.h>

#include "nodes/metrics.hpp"
#include "sched/plan.hpp"

namespace sharegrid {
namespace {

TEST(Metrics, RecordsPerPrincipalSeries) {
  nodes::Metrics metrics(3);
  EXPECT_EQ(metrics.principal_count(), 3u);

  metrics.on_offered(0, seconds(0.5));
  metrics.on_offered(0, seconds(1.5));
  metrics.on_served(1, seconds(0.2));
  metrics.on_rejected(2, seconds(0.3));
  metrics.on_latency(1, 0.025);
  metrics.on_reply_bytes(1, seconds(0.2), 6144.0);

  EXPECT_EQ(metrics.offered(0).total_events(), 2u);
  EXPECT_EQ(metrics.offered(0).events_in_bin(1), 1u);
  EXPECT_EQ(metrics.served(1).total_events(), 1u);
  EXPECT_EQ(metrics.rejected(2).total_events(), 1u);
  EXPECT_EQ(metrics.latency(1).count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.latency(1).mean(), 0.025);
  EXPECT_EQ(metrics.reply_bytes(1).total_events(), 6144u);

  // Untouched principals stay at zero.
  EXPECT_EQ(metrics.served(0).total_events(), 0u);
  EXPECT_EQ(metrics.latency(2).count(), 0u);
}

TEST(Metrics, RejectsOutOfRangePrincipals) {
  nodes::Metrics metrics(2);
  EXPECT_THROW(metrics.on_offered(2, 0), ContractViolation);
  EXPECT_THROW(metrics.served(5), ContractViolation);
  EXPECT_THROW(nodes::Metrics(0), ContractViolation);
}

TEST(Metrics, CustomBinWidth) {
  nodes::Metrics metrics(1, 100 * kMillisecond);
  metrics.on_served(0, milliseconds(250.0));
  EXPECT_EQ(metrics.served(0).events_in_bin(2), 1u);
  EXPECT_DOUBLE_EQ(metrics.served(0).rate_in_bin(2), 10.0);
}

TEST(Plan, AccessorsAndFractions) {
  sched::Plan plan;
  plan.demand = {100.0, 0.0, 50.0};
  plan.rate = Matrix(3, 3, 0.0);
  plan.rate(0, 0) = 30.0;
  plan.rate(0, 2) = 20.0;
  plan.rate(2, 2) = 50.0;

  EXPECT_EQ(plan.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.admitted(0), 50.0);
  EXPECT_DOUBLE_EQ(plan.admitted(1), 0.0);
  EXPECT_DOUBLE_EQ(plan.server_load(2), 70.0);
  EXPECT_DOUBLE_EQ(plan.server_load(1), 0.0);

  EXPECT_DOUBLE_EQ(plan.admit_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(plan.admit_fraction(1), 1.0);  // no demand => nothing held
  EXPECT_DOUBLE_EQ(plan.admit_fraction(2), 1.0);
  EXPECT_THROW(plan.admit_fraction(7), ContractViolation);
}

TEST(Plan, AdmitFractionClampsNumericNoise) {
  sched::Plan plan;
  plan.demand = {10.0};
  plan.rate = Matrix(1, 1, 10.0000001);  // solver residue above demand
  EXPECT_DOUBLE_EQ(plan.admit_fraction(0), 1.0);
}

}  // namespace
}  // namespace sharegrid
