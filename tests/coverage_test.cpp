// Additional end-to-end and property coverage for paths the module tests
// exercise only lightly: weighted admission under heavy-tailed sizes,
// explicit-queue L7 with coordination, and ticket round-trip sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/flow.hpp"
#include "core/ticket.hpp"
#include "experiments/paper_figures.hpp"
#include "experiments/scenario.hpp"
#include "util/rng.hpp"

namespace sharegrid {
namespace {

TEST(WeightedAdmission, HeavyTailedWeightsPreserveUnitShares) {
  // With weighted admission, agreements govern capacity *units*; a
  // principal sending many huge replies gets fewer requests, not more
  // units. Both principals draw from the same size distribution here, so
  // their unit shares (and hence approximate request shares) must still
  // land on the agreement split.
  core::AgreementGraph g;
  g.add_principal("S", 0.0);
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(0, 1, 0.75, 0.75);
  g.set_agreement(0, 2, 0.25, 0.25);

  experiments::ScenarioConfig c;
  c.graph = g;
  c.layer = experiments::Layer::kL4;
  c.weighted_admission = true;
  c.servers = {{"S", 320.0}};
  c.clients = {{"A1", "A", 0, 400.0, {{0.0, 60.0}}},
               {"A2", "A", 0, 400.0, {{0.0, 60.0}}},
               {"B1", "B", 0, 400.0, {{0.0, 60.0}}}};
  c.phases = {{"steady", 15.0, 58.0}};
  c.duration_sec = 60.0;

  const auto result = experiments::run_scenario(c);
  const double a = result.phase_served(0, 1);
  const double b = result.phase_served(0, 2);
  // Request-rate split tracks the 3:1 unit split within heavy-tail noise.
  EXPECT_NEAR(a / (a + b), 0.75, 0.08);
  // Weighted service is slower in request terms (mean weight ~1, but
  // borrow/debt and the tail cost throughput); still the server must be
  // well utilized in unit terms: total request rate below 320 is expected,
  // far below would mean units are being lost.
  EXPECT_GT(a + b, 180.0);
}

TEST(ExplicitQueueL7, CoordinatesAcrossRedirectorsLikeCreditMode) {
  // The ablation compares throughput; this checks *correctness*: the
  // explicit-queue implementation still honours agreements when two
  // redirectors coordinate through the tree.
  experiments::FigureExperiment figure = experiments::figure6();
  figure.config.l7_mode = nodes::L7Redirector::Mode::kExplicitQueue;
  figure.config.duration_sec = 120.0;
  figure.config.phases = {{"phase1", 20.0, 115.0}};
  const auto result = experiments::run_scenario(figure.config);
  // B (one client, under its mandatory) must still be fully served; A
  // takes most of the remainder, modulo the bunching losses the paper
  // describes (which is why they abandoned this design).
  EXPECT_NEAR(result.phase_served(0, 2), 135.0, 14.0);
  EXPECT_GT(result.phase_served(0, 1), 100.0);
  EXPECT_LE(result.phase_served(0, 1), 190.0);
}

class TicketRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TicketRoundTripTest, LedgerAgreementEquivalence) {
  // Property: graph -> ledger -> graph is the identity (within fp), for
  // arbitrary valid agreement structures and arbitrary currency faces.
  Rng rng(GetParam());
  core::AgreementGraph g;
  const std::size_t n = 2 + rng.bounded(5);
  std::vector<core::Principal> principals;
  for (std::size_t i = 0; i < n; ++i) {
    const double cap = rng.uniform(0.0, 500.0);
    g.add_principal("P" + std::to_string(i), cap);
    principals.push_back({"P" + std::to_string(i), cap});
  }
  for (core::PrincipalId i = 0; i < n; ++i) {
    double budget = 1.0;
    for (core::PrincipalId j = 0; j < n; ++j) {
      if (i == j || !rng.chance(0.5)) continue;
      const double lb = rng.uniform(0.0, budget * 0.5);
      const double ub = rng.uniform(lb, 1.0);
      if (ub <= 0.0) continue;
      g.set_agreement(i, j, lb, ub);
      budget -= lb;
    }
  }

  const double face = rng.uniform(1.0, 1000.0);
  const auto ledger = core::TicketLedger::from_agreements(g, face);
  const core::AgreementGraph back = ledger.to_agreements(principals);
  for (core::PrincipalId i = 0; i < n; ++i) {
    for (core::PrincipalId j = 0; j < n; ++j) {
      EXPECT_NEAR(back.lower_bound(i, j), g.lower_bound(i, j), 1e-9);
      EXPECT_NEAR(back.upper_bound(i, j), g.upper_bound(i, j), 1e-9);
    }
  }

  // The flow analysis is invariant under the representation round trip.
  const auto direct = core::compute_access_levels(g);
  const auto via_tickets = core::compute_access_levels(back);
  for (core::PrincipalId i = 0; i < n; ++i) {
    EXPECT_NEAR(direct.mandatory_capacity[i],
                via_tickets.mandatory_capacity[i], 1e-6);
    EXPECT_NEAR(direct.optional_capacity[i],
                via_tickets.optional_capacity[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TicketRoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ScenarioResultTables, SeriesAndCsvShapes) {
  experiments::FigureExperiment figure = experiments::figure9();
  figure.config.duration_sec = 12.0;
  figure.config.phases = {{"p", 2.0, 10.0}};
  const auto result = experiments::run_scenario(figure.config);

  const TextTable series = result.series_table();
  EXPECT_GE(series.row_count(), 11u);
  std::ostringstream csv;
  series.print_csv(csv);
  const std::string text = csv.str();
  // Header + one line per row, comma-separated.
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            series.row_count() + 1);
  EXPECT_NE(text.find("time_s,A_req_s,B_req_s"), std::string::npos);
}

}  // namespace
}  // namespace sharegrid
