// Unit tests for the two-phase simplex solver.
#include "lp/solve_context.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sharegrid::lp {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, z=36.
  Problem p(2, Sense::kMaximize);
  p.set_objective(0, 3.0);
  p.set_objective(1, 5.0);
  p.add_constraint({{0, 1.0}}, Relation::kLessEq, 4.0);
  p.add_constraint({{1, 2.0}}, Relation::kLessEq, 12.0);
  p.add_constraint({{0, 3.0}, {1, 2.0}}, Relation::kLessEq, 18.0);

  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_NEAR(s.values[0], 2.0, 1e-6);
  EXPECT_NEAR(s.values[1], 6.0, 1e-6);
}

TEST(Simplex, SolvesMinimizationWithGreaterEq) {
  // min 2x + 3y st x + y >= 10, x >= 2  => x=10 (cheapest), y=0, z=20.
  Problem p(2, Sense::kMinimize);
  p.set_objective(0, 2.0);
  p.set_objective(1, 3.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEq, 10.0);
  p.add_constraint({{0, 1.0}}, Relation::kGreaterEq, 2.0);

  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
  EXPECT_NEAR(s.values[0], 10.0, 1e-6);
  EXPECT_NEAR(s.values[1], 0.0, 1e-6);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // max x + y st x + y = 5, x <= 3  => z = 5 (any split), x <= 3.
  Problem p(2, Sense::kMaximize);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 5.0);
  p.add_constraint({{0, 1.0}}, Relation::kLessEq, 3.0);

  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
  EXPECT_NEAR(s.values[0] + s.values[1], 5.0, 1e-6);
  EXPECT_LE(s.values[0], 3.0 + 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p(1, Sense::kMaximize);
  p.set_objective(0, 1.0);
  p.add_constraint({{0, 1.0}}, Relation::kLessEq, 1.0);
  p.add_constraint({{0, 1.0}}, Relation::kGreaterEq, 2.0);

  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p(1, Sense::kMaximize);
  p.set_objective(0, 1.0);
  // x >= 0, no upper bound anywhere.
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, RespectsVariableBounds) {
  // max x + y with 1 <= x <= 2, 3 <= y <= 4 and no other constraints.
  Problem p(2, Sense::kMaximize);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.set_bounds(0, 1.0, 2.0);
  p.set_bounds(1, 3.0, 4.0);

  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 2.0, 1e-6);
  EXPECT_NEAR(s.values[1], 4.0, 1e-6);
}

TEST(Simplex, LowerBoundsShiftFeasibleRegion) {
  // min x + y st x + y >= 4 with x >= 3: optimum x=3, y=1 or x=4, y=0?
  // Both cost the same under equal prices; check the objective only.
  Problem p(2, Sense::kMinimize);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.set_bounds(0, 3.0, kInfinity);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEq, 4.0);

  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
  EXPECT_GE(s.values[0], 3.0 - 1e-9);
}

TEST(Simplex, InfeasibleBoundsVsConstraint) {
  // x <= 1 (bound) but constraint x >= 2.
  Problem p(1, Sense::kMaximize);
  p.set_objective(0, 1.0);
  p.set_bounds(0, 0.0, 1.0);
  p.add_constraint({{0, 1.0}}, Relation::kGreaterEq, 2.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Classic degeneracy: many redundant constraints through the origin.
  Problem p(3, Sense::kMaximize);
  p.set_objective(0, 0.75);
  p.set_objective(1, -150.0);
  p.set_objective(2, 0.02);
  p.add_constraint({{0, 0.25}, {1, -60.0}, {2, -0.04}}, Relation::kLessEq,
                   0.0);
  p.add_constraint({{0, 0.5}, {1, -90.0}, {2, -0.02}}, Relation::kLessEq, 0.0);
  p.add_constraint({{2, 1.0}}, Relation::kLessEq, 1.0);

  const Solution s = solve(p);
  // Beale's cycling example (truncated): must terminate at an optimum.
  ASSERT_TRUE(s.optimal());
  EXPECT_GE(s.objective, 0.0);
}

// Property sweep: random feasible-by-construction LPs must (a) report
// optimal, (b) satisfy every constraint at the reported point, and (c) beat
// or match a large random sample of feasible points.
class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomTest, OptimumIsFeasibleAndDominatesSamples) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.bounded(4);  // 2..5 variables
  const std::size_t m = 1 + rng.bounded(5);  // 1..5 constraints

  Problem p(n, Sense::kMaximize);
  std::vector<double> upper(n);
  for (std::size_t j = 0; j < n; ++j) {
    upper[j] = rng.uniform(1.0, 10.0);
    p.set_bounds(j, 0.0, upper[j]);
    p.set_objective(j, rng.uniform(-2.0, 5.0));
  }
  // Constraints sum(a_j x_j) <= b with a_j >= 0 and b sized so x = 0 is
  // always feasible.
  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  std::vector<double> rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = 0; j < n; ++j) {
      rows[i][j] = rng.uniform(0.0, 3.0);
      terms.emplace_back(j, rows[i][j]);
    }
    rhs[i] = rng.uniform(1.0, 20.0);
    p.add_constraint(std::move(terms), Relation::kLessEq, rhs[i]);
  }

  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());

  // (b) feasibility of the reported optimum.
  for (std::size_t i = 0; i < m; ++i) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) lhs += rows[i][j] * s.values[j];
    EXPECT_LE(lhs, rhs[i] + 1e-6);
  }
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_GE(s.values[j], -1e-9);
    EXPECT_LE(s.values[j], upper[j] + 1e-9);
  }

  // (c) no random feasible point beats the optimum.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(n);
    for (std::size_t j = 0; j < n; ++j) x[j] = rng.uniform(0.0, upper[j]);
    bool feasible = true;
    for (std::size_t i = 0; i < m && feasible; ++i) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += rows[i][j] * x[j];
      feasible = lhs <= rhs[i];
    }
    if (!feasible) continue;
    double z = 0.0;
    for (std::size_t j = 0; j < n; ++j) z += p.objective()[j] * x[j];
    EXPECT_LE(z, s.objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(Problem, RejectsInvertedAndNaNBounds) {
  Problem p(2);
  EXPECT_THROW(p.set_bounds(0, 2.0, 1.0), ContractViolation);
  const double nan = std::nan("");
  EXPECT_THROW(p.set_bounds(0, nan, 1.0), ContractViolation);
  EXPECT_THROW(p.set_bounds(0, 0.0, nan), ContractViolation);
  EXPECT_THROW(p.set_bounds(0, nan, nan), ContractViolation);
  // Valid settings still pass, including the degenerate fixed variable and
  // an unbounded-above variable.
  EXPECT_NO_THROW(p.set_bounds(0, 1.5, 1.5));
  EXPECT_NO_THROW(p.set_bounds(1, -1.0, kInfinity));
}

TEST(Simplex, FixedVariablesSolve) {
  // lo == hi pins a variable; income-stage programs produce these whenever
  // demand falls at the mandatory floor. Fixed columns never enter the
  // basis (they cannot move), so the solver must still route their
  // contribution through the constraints correctly.
  Problem p(2, Sense::kMaximize);
  p.set_objective(0, 5.0);
  p.set_objective(1, 1.0);
  p.set_bounds(0, 2.0, 2.0);
  p.set_bounds(1, 0.0, 10.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEq, 6.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
  EXPECT_NEAR(s.values[1], 4.0, 1e-9);
  EXPECT_NEAR(s.objective, 14.0, 1e-9);
}

TEST(Simplex, AllVariablesFixedSolves) {
  Problem p(2, Sense::kMinimize);
  p.set_objective(0, 3.0);
  p.set_objective(1, -1.0);
  p.set_bounds(0, 1.0, 1.0);
  p.set_bounds(1, 2.5, 2.5);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEq, 4.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 1.0, 1e-9);
  EXPECT_NEAR(s.values[1], 2.5, 1e-9);
  EXPECT_NEAR(s.objective, 0.5, 1e-9);
}

TEST(SolveContext, BoundFlipsReplaceBasisChanges) {
  // One constraint row means at most one basic structural variable, yet the
  // optimum needs both variables at their upper bounds — only a bound flip
  // (move a nonbasic variable to its opposite bound, no pivot) can get the
  // second one there. The explicit-row engine needed extra tableau rows and
  // pivots for the same program.
  SolveContext ctx;
  Problem p(2, Sense::kMaximize);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.set_bounds(0, 0.0, 3.0);
  p.set_bounds(1, 0.0, 4.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEq, 10.0);
  const Solution s = ctx.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
  EXPECT_NEAR(s.values[1], 4.0, 1e-9);
  EXPECT_GT(ctx.stats().bound_flips, 0u);
}

// Equivalence sweep for the bounded-variable simplex: every randomized
// box-constrained program is solved twice — once with implicit bounds (the
// production path) and once against an explicitly reformulated program whose
// finite upper bounds are ordinary `x_j <= hi_j` rows, the shape the old
// engine materialized internally. Statuses must agree exactly, optima must
// agree to solver tolerance, both returned points must satisfy their
// original programs, and the implicit engine must pivot no more than the
// explicit one (flips replace basis changes; the smaller tableau never adds
// iterations). 32 seeds x 10 instances = 320 programs, covering fixed
// (lo == hi), unbounded-above, infeasible, and unbounded-objective cases.
class BoundedSimplexEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedSimplexEquivalence, MatchesExplicitRowFormulation) {
  Rng rng(GetParam() * 7919 + 17);
  std::uint64_t implicit_pivots = 0;
  std::uint64_t explicit_pivots = 0;
  for (int instance = 0; instance < 10; ++instance) {
    const std::size_t n = 2 + rng.bounded(4);  // 2..5 variables
    const std::size_t m = 1 + rng.bounded(4);  // 1..4 constraints
    const Sense sense =
        rng.bounded(2) == 0 ? Sense::kMaximize : Sense::kMinimize;

    Problem boxed(n, sense);
    Problem rows(n, sense);
    std::vector<double> hi(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double lo = rng.uniform(-2.0, 2.0);
      const double roll = rng.uniform(0.0, 1.0);
      if (roll < 0.15) {
        hi[j] = lo;  // fixed variable
      } else if (roll < 0.30) {
        hi[j] = kInfinity;
      } else {
        hi[j] = lo + rng.uniform(0.5, 8.0);
      }
      const double c = rng.uniform(-4.0, 4.0);
      boxed.set_bounds(j, lo, hi[j]);
      boxed.set_objective(j, c);
      rows.set_bounds(j, lo, kInfinity);
      rows.set_objective(j, c);
    }
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.uniform(0.0, 1.0) < 0.3 && terms.size() + (n - j) > 1)
          continue;  // sparse rows, but never an empty one
        terms.emplace_back(j, rng.uniform(-3.0, 3.0));
      }
      const double roll = rng.uniform(0.0, 1.0);
      const Relation rel = roll < 0.6   ? Relation::kLessEq
                           : roll < 0.85 ? Relation::kGreaterEq
                                         : Relation::kEqual;
      const double rhs = rng.uniform(-5.0, 10.0);
      boxed.add_constraint(terms, rel, rhs);
      rows.add_constraint(std::move(terms), rel, rhs);
    }
    // Bound rows go after the real constraints, mirroring where the old
    // engine emitted them in its tableau.
    for (std::size_t j = 0; j < n; ++j) {
      if (std::isfinite(hi[j]))
        rows.add_constraint({{j, 1.0}}, Relation::kLessEq, hi[j]);
    }

    SolveContext boxed_ctx;
    SolveContext rows_ctx;
    const Solution si = boxed_ctx.solve(boxed);
    const Solution se = rows_ctx.solve(rows);
    ASSERT_EQ(si.status, se.status)
        << "seed " << GetParam() << " instance " << instance;
    if (si.optimal()) {
      EXPECT_NEAR(si.objective, se.objective,
                  1e-7 * (1.0 + std::abs(se.objective)))
          << "seed " << GetParam() << " instance " << instance;
      audit::audit_lp_solution(boxed, si, 1e-6);
      audit::audit_lp_solution(rows, se, 1e-6);
    }
    implicit_pivots += boxed_ctx.stats().pivots;
    explicit_pivots += rows_ctx.stats().pivots;
  }
  EXPECT_LE(implicit_pivots, explicit_pivots)
      << "the implicit-bound tableau must pivot no more than the "
         "explicit-row formulation";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedSimplexEquivalence,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace sharegrid::lp
