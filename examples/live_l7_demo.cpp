// Live demo: the Layer-7 redirector running over real loopback TCP, not the
// simulator — actual HTTP requests, actual 302 redirects, the same LP
// scheduling stack (§4.1 as a runnable service).
//
//   $ ./live_l7_demo
//
// Starts a backend echo server and the redirector, then plays two
// organizations against each other: "gold" holds [0.6, 1.0] of the
// provider's capacity, "bronze" [0.05, 0.1]. Interleaved 40 req/s streams
// show gold sailing through while bronze bounces off its 10% ceiling.
#include <iostream>
#include <thread>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "http/message.hpp"
#include "live/l7_service.hpp"
#include "net/tcp.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/table.hpp"

using namespace sharegrid;

namespace {

/// Trivial backend: answers every request with 200 OK.
void backend_loop(net::Socket* listener, std::atomic<bool>* running) {
  while (running->load()) {
    try {
      net::Socket conn = listener->accept();
      if (!running->load()) break;
      conn.read_http_head();
      http::Response ok;
      ok.headers["content-length"] = "0";
      conn.write_all(ok.serialize());
    } catch (const ContractViolation&) {
      // ignore per-connection errors
    }
  }
}

/// One GET; returns the redirect Location (empty when not a 302).
std::string get_location(std::uint16_t port, const std::string& target) {
  net::Socket conn = net::Socket::connect_loopback(port);
  http::Request req;
  req.target = target;
  conn.write_all(req.serialize());
  const auto resp = http::parse_response(conn.read_http_head());
  if (!resp || resp->status != 302) return {};
  return resp->headers.at("location");
}

}  // namespace

int main() {
  // Provider S owns the hardware; gold and bronze hold SLAs against it.
  core::AgreementGraph graph;
  const auto s = graph.add_principal("S", 200.0);  // 200 req/s capacity
  graph.add_principal("gold", 0.0);
  graph.add_principal("bronze", 0.0);
  graph.set_agreement(s, graph.find("gold"), 0.6, 1.0);
  graph.set_agreement(s, graph.find("bronze"), 0.05, 0.1);

  const sched::ResponseTimeScheduler scheduler(
      graph, core::compute_access_levels(graph));

  // Real backend server on an ephemeral loopback port.
  std::atomic<bool> running{true};
  net::Socket backend_listener = net::Socket::listen_on_loopback();
  const std::uint16_t backend_port = backend_listener.local_port();
  std::thread backend(backend_loop, &backend_listener, &running);

  live::L7Service::Config config;
  config.backends = {{"127.0.0.1:" + std::to_string(backend_port), s}};
  live::L7Service service(&scheduler, graph, config);
  service.start();
  std::cout << "redirector listening on 127.0.0.1:" << service.port()
            << ", backend on 127.0.0.1:" << backend_port << "\n\n";

  // Fire interleaved bursts for both organizations over ~1 second.
  int gold_admitted = 0, gold_bounced = 0;
  int bronze_admitted = 0, bronze_bounced = 0;
  const std::string backend_host = "127.0.0.1:" + std::to_string(backend_port);
  for (int i = 0; i < 40; ++i) {
    const std::string gold_loc =
        get_location(service.port(), "/org/gold/app");
    (gold_loc.find(backend_host) != std::string::npos ? gold_admitted
                                                      : gold_bounced)++;
    const std::string bronze_loc =
        get_location(service.port(), "/org/bronze/app");
    (bronze_loc.find(backend_host) != std::string::npos ? bronze_admitted
                                                        : bronze_bounced)++;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }

  TextTable table({"org", "agreement", "admitted", "self-redirected"});
  table.add_row({"gold", "[0.6, 1.0]", std::to_string(gold_admitted),
                 std::to_string(gold_bounced)});
  table.add_row({"bronze", "[0.05, 0.1]", std::to_string(bronze_admitted),
                 std::to_string(bronze_bounced)});
  table.print(std::cout);

  std::cout << "\nBoth offer ~40 req/s; gold sits far below its 120 req/s "
               "floor, so once the\nconservative first window and the "
               "budgeted spike re-plans warm the estimator\nit is admitted "
               "in full, while bronze is clamped to its 20 req/s (10%) "
               "ceiling\nand about half of its stream bounces back for "
               "retry.\n";

  service.stop();
  running.store(false);
  try {
    net::Socket::connect_loopback(backend_port);  // unblock the backend
  } catch (const ContractViolation&) {
  }
  backend.join();
  return 0;
}
