// Cross-process control plane over loopback TCP (coord::SocketTransport).
//
// The launcher forks one OS process per redirector declared in the scenario
// (transport = socket). Each child hosts one coord::ControlPlane member and
// joins the star exchange: the root (process 0) paces rounds, the leaves
// report their demand vectors, and every process advances its scheduling
// window from the transport's on_round_start hook, so the whole fleet steps
// window boundaries on the same round tags.
//
// Two phases, both asserted:
//
//   1. Convergence — every child drives K windows over the wire, then
//      replays the identical schedule on a single-process
//      InProcessTransport fleet and requires its per-window plans, quotas
//      and demand vectors to match *bitwise*. The lockstep wire protocol
//      sums reports in the same member order with the same floating-point
//      order, so "close" is not accepted — equality is.
//
//   2. Degradation — the highest-index child exits abruptly mid-run. The
//      survivors' rounds hit the deadline, no fresh aggregate arrives, the
//      staleness threshold trips, and each surviving member must drop back
//      to the conservative 1/R regime (global().valid == false) — the
//      paper's no-snapshot posture — within the staleness budget.
//
// Usage: multi_process_demo <scenario.ini>   (see scenarios/multi_process.ini)
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/socket_transport.hpp"
#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "experiments/scenario_ini.hpp"
#include "net/tcp.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace {

using sharegrid::experiments::ScenarioConfig;

constexpr int kWindows = 8;  // windows compared bitwise in phase 1

std::int64_t now_usec() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The scheduler run_scenario would build for this config: capacities come
/// from the declared machines, then one ResponseTimeScheduler over the
/// analyzed access levels. The demo keeps to the response-time objective —
/// the transport under test is indifferent to the LP on top of it.
std::unique_ptr<sharegrid::sched::Scheduler> build_scheduler(
    const ScenarioConfig& config, sharegrid::core::AgreementGraph* graph_out) {
  SHAREGRID_EXPECTS(config.scheduler ==
                    sharegrid::experiments::SchedulerKind::kResponseTime);
  sharegrid::core::AgreementGraph graph = config.graph;
  for (sharegrid::core::PrincipalId p = 0; p < graph.size(); ++p)
    graph.set_capacity(p, 0.0);
  for (const auto& spec : config.servers) {
    const sharegrid::core::PrincipalId owner = graph.find(spec.owner);
    SHAREGRID_EXPECTS(owner != sharegrid::core::kNoPrincipal);
    graph.set_capacity(owner, graph.capacity(owner) + spec.capacity);
  }
  *graph_out = graph;
  sharegrid::sched::ResponseTimeOptions options;
  if (!config.locality_caps.empty()) options.locality_caps = config.locality_caps;
  return std::make_unique<sharegrid::sched::ResponseTimeScheduler>(
      *graph_out, sharegrid::core::compute_access_levels(*graph_out), options);
}

sharegrid::coord::ControlPlaneConfig plane_config(const ScenarioConfig& config) {
  sharegrid::coord::ControlPlaneConfig cp;
  cp.window = config.window;
  cp.redirector_count = config.redirector_count;
  cp.stale_policy = config.stale_policy;
  cp.spike_replan_limit = config.spike_replan_limit;
  return cp;
}

/// Deterministic offered load for member `m`, window `k` (1-based): the
/// scenario's client rates scaled by a small per-window pattern, so the
/// demand estimators actually move and the plans differ window to window.
void inject_arrivals(const ScenarioConfig& config,
                     sharegrid::coord::ControlPlane::Member* member,
                     std::size_t m, int k) {
  const double window_sec = sharegrid::to_seconds(config.window);
  for (const auto& client : config.clients) {
    if (client.redirector != m) continue;
    const sharegrid::core::PrincipalId p = config.graph.find(client.principal);
    SHAREGRID_EXPECTS(p != sharegrid::core::kNoPrincipal);
    const double scale =
        0.5 + 0.5 * static_cast<double>((static_cast<std::size_t>(k) + m) % 3);
    member->record_arrival(p, client.rate * window_sec * scale);
  }
}

/// Everything one window boundary decided, captured bitwise.
struct WindowRecord {
  std::vector<double> demand;  // last_local_demand at begin_window
  std::vector<double> quota;   // remaining quota per principal
  std::vector<double> plan;    // full plan rate matrix, row-major
  bool global_valid = false;

  bool operator==(const WindowRecord& o) const {
    return demand == o.demand && quota == o.quota && plan == o.plan &&
           global_valid == o.global_valid;
  }
};

WindowRecord snapshot(const sharegrid::coord::ControlPlane::Member& member) {
  WindowRecord rec;
  rec.demand = member.last_local_demand();
  const std::size_t n = member.size();
  for (std::size_t i = 0; i < n; ++i)
    rec.quota.push_back(member.window_scheduler().remaining_quota(i));
  const auto& plan = member.window_scheduler().last_plan();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      rec.plan.push_back(plan.rate.rows() == 0 ? 0.0 : plan.rate(i, j));
  rec.global_valid = member.global().valid;
  return rec;
}

/// Attaches a single-member plane at its global slot on the shared
/// InProcessTransport. Each forked process registers its one member at
/// member_offset on the wire; the baseline mirrors that addressing.
class OffsetTransport final : public sharegrid::coord::SnapshotTransport {
 public:
  OffsetTransport(sharegrid::coord::InProcessTransport* inner,
                  std::size_t offset)
      : inner_(inner), offset_(offset) {}
  void attach(std::size_t member, Provider provider,
              Receiver receiver) override {
    inner_->attach(offset_ + member, std::move(provider), std::move(receiver));
  }
  void start() override {}
  void stop() override {}
  std::uint64_t messages_sent() const override { return 0; }

 private:
  sharegrid::coord::InProcessTransport* inner_;
  std::size_t offset_;
};

/// One full-fleet run on the synchronous in-process transport — the oracle
/// the socket fleet must match. Window k plans against the aggregate of
/// round k-1, exactly like the wire protocol's lockstep schedule. Each
/// member gets its own plane and scheduler, just like the per-process fleet:
/// the LP solver carries warm-start state between solves, so a scheduler
/// shared across members would see solve sequences no child process does.
std::vector<std::vector<WindowRecord>> run_baseline(
    const ScenarioConfig& config) {
  const std::size_t r = config.redirector_count;
  sharegrid::coord::InProcessTransport transport(r, config.graph.size());
  std::vector<sharegrid::core::AgreementGraph> graphs(r);
  std::vector<std::unique_ptr<sharegrid::sched::Scheduler>> schedulers;
  std::vector<std::unique_ptr<sharegrid::coord::ControlPlane>> planes;
  std::vector<sharegrid::coord::ControlPlane::Member*> members;
  std::vector<OffsetTransport> adapters;
  adapters.reserve(r);
  for (std::size_t m = 0; m < r; ++m) {
    schedulers.push_back(build_scheduler(config, &graphs[m]));
    planes.push_back(std::make_unique<sharegrid::coord::ControlPlane>(
        schedulers[m].get(), plane_config(config)));
    members.push_back(planes[m]->add_member());
    adapters.emplace_back(&transport, m);
    planes[m]->connect(&adapters[m]);
  }
  transport.start();

  std::vector<std::vector<WindowRecord>> records(r);
  for (int k = 1; k <= kWindows; ++k) {
    for (std::size_t m = 0; m < r; ++m) {
      if (k == 1) {
        planes[m]->begin_windows(0);
      } else {
        planes[m]->end_windows();
        planes[m]->begin_windows(static_cast<sharegrid::SimTime>(k - 1) *
                                 config.window);
      }
      inject_arrivals(config, members[m], m, k);
      records[m].push_back(snapshot(*members[m]));
    }
    transport.exchange();
  }
  transport.stop();
  return records;
}

enum class Phase { kConverge, kDegrade };

/// Body of one forked redirector process.
int run_child(const ScenarioConfig& config, std::size_t index,
              std::uint16_t root_port, Phase phase) {
  sharegrid::core::AgreementGraph graph;
  const auto scheduler = build_scheduler(config, &graph);
  sharegrid::coord::ControlPlane plane(scheduler.get(), plane_config(config));
  sharegrid::coord::ControlPlane::Member* member = plane.add_member();

  int windows_begun = 0;
  bool round_gap = false;
  std::vector<WindowRecord> records;

  sharegrid::coord::SocketTransport::Options options;
  options.peers = config.socket_peers;
  options.peers[0] = "127.0.0.1:" + std::to_string(root_port);
  options.process_index = index;
  options.member_offset = index;
  options.fleet_size = config.redirector_count;
  options.round_period_usec = 2000;
  options.dial_retry_usec = 5000;
  options.io_timeout_ms = 20;
  if (phase == Phase::kConverge) {
    // A deadline generous enough that an abandoned round means something is
    // genuinely wrong (and the bitwise comparison would be void anyway).
    options.round_deadline_usec = 5'000'000;
    options.stale_after_usec = 600'000'000;
  } else {
    options.round_deadline_usec = 40'000;
    options.stale_after_usec = 120'000;
  }
  options.on_round_start = [&](std::uint64_t round) {
    ++windows_begun;
    if (round != static_cast<std::uint64_t>(windows_begun)) round_gap = true;
    if (windows_begun == 1) {
      plane.begin_windows(0);
    } else {
      plane.end_windows();
      plane.begin_windows(static_cast<sharegrid::SimTime>(windows_begun - 1) *
                          config.window);
    }
    inject_arrivals(config, member, index, windows_begun);
    if (windows_begun <= kWindows) records.push_back(snapshot(*member));
  };

  sharegrid::coord::SocketTransport transport(
      /*local_member_count=*/1, graph.size(), std::move(options));
  plane.connect(&transport);
  transport.start();

  const std::int64_t hard_stop = now_usec() + 30'000'000;  // loaded-CI cap
  const bool victim =
      phase == Phase::kDegrade && index == config.redirector_count - 1;
  bool degraded = false;
  for (;;) {
    transport.poll(now_usec());
    if (phase == Phase::kConverge && windows_begun > kWindows) break;
    if (victim && windows_begun >= 3) break;  // simulated crash, mid-fleet
    if (phase == Phase::kDegrade && !victim &&
        transport.stale_fallbacks() >= 1 && !member->global().valid) {
      degraded = true;
      break;
    }
    if (now_usec() > hard_stop) {
      std::fprintf(stderr, "member %zu: timed out (windows=%d stale=%llu)\n",
                   index, windows_begun,
                   static_cast<unsigned long long>(transport.stale_fallbacks()));
      transport.stop();
      return 3;
    }
    usleep(300);
  }
  transport.stop();

  if (phase == Phase::kDegrade) {
    if (victim) {
      std::printf("member %zu: exited after window 3 (simulated crash)\n",
                  index);
      return 0;
    }
    if (!degraded) return 3;
    // The next window must plan from the conservative no-snapshot posture.
    plane.end_windows();
    plane.begin_windows(static_cast<sharegrid::SimTime>(windows_begun) *
                        config.window);
    if (member->global().valid) {
      std::fprintf(stderr, "member %zu: global still valid after fallback\n",
                   index);
      return 3;
    }
    std::printf(
        "member %zu: degraded to the conservative 1/R regime after peer loss "
        "(stale_fallbacks=%llu rounds_abandoned=%llu)\n",
        index, static_cast<unsigned long long>(transport.stale_fallbacks()),
        static_cast<unsigned long long>(transport.rounds_abandoned()));
    return 0;
  }

  // Phase 1: replay the fleet in-process and demand bitwise equality.
  if (round_gap || transport.rounds_abandoned() != 0) {
    std::fprintf(stderr, "member %zu: round abandoned during convergence\n",
                 index);
    return 2;
  }
  if (transport.frames_rejected() != 0) {
    std::fprintf(stderr, "member %zu: rejected frames on a clean run: %s\n",
                 index, transport.last_reject_reason().c_str());
    return 2;
  }
  const auto baseline = run_baseline(config);
  if (records.size() != static_cast<std::size_t>(kWindows) ||
      records != baseline[index]) {
    std::fprintf(stderr,
                 "member %zu: socket plans diverge from InProcessTransport\n",
                 index);
    return 1;
  }
  std::printf(
      "member %zu: %d windows over TCP, plans bitwise-identical to the "
      "in-process baseline (messages_sent=%llu)\n",
      index, kWindows,
      static_cast<unsigned long long>(transport.messages_sent()));
  return 0;
}

/// Grabs an ephemeral loopback port. A tiny bind race remains between close
/// and the root child's re-bind, but SO_REUSEADDR plus the kernel's
/// ephemeral-port rotation make it vanishingly unlikely.
std::uint16_t pick_port() {
  return sharegrid::net::Socket::listen_on_loopback(0).local_port();
}

/// Forks the fleet (root first) and waits for every child to exit cleanly.
bool run_phase(const ScenarioConfig& config, Phase phase, const char* name) {
  const std::uint16_t port = pick_port();
  std::fflush(stdout);
  std::vector<pid_t> children;
  for (std::size_t i = 0; i < config.redirector_count; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return false;
    }
    if (pid == 0) {
      int code = 4;
      try {
        code = run_child(config, i, port, phase);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "member %zu: %s\n", i, e.what());
      }
      std::fflush(stdout);
      std::_Exit(code);
    }
    children.push_back(pid);
  }
  bool ok = true;
  for (const pid_t pid : children) {
    int status = 0;
    if (waitpid(pid, &status, 0) != pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0)
      ok = false;
  }
  std::printf("phase %s: %s\n", name, ok ? "ok" : "FAILED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario.ini>\n", argv[0]);
    return 64;
  }
  ScenarioConfig config;
  try {
    config = sharegrid::experiments::load_scenario_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 64;
  }
  if (config.transport != ScenarioConfig::TransportKind::kSocket) {
    std::fprintf(stderr,
                 "%s: scenario must set [control_plane] transport = socket\n",
                 argv[1]);
    return 64;
  }
  if (config.redirector_count < 2) {
    std::fprintf(stderr, "need at least 2 redirector processes\n");
    return 64;
  }

  std::printf("forking %zu redirector processes over loopback TCP\n",
              config.redirector_count);
  const bool converged = run_phase(config, Phase::kConverge, "convergence");
  const bool degraded = converged && run_phase(config, Phase::kDegrade,
                                              "degradation");
  if (!(converged && degraded)) return 1;
  std::printf(
      "multi_process_demo: plan-convergence: ok; degradation-to-1/R: ok\n");
  return 0;
}
