// Cross-process control plane over loopback TCP (coord::SocketTransport).
//
// The launcher forks one OS process per redirector declared in the scenario
// (transport = socket). Each child hosts one coord::ControlPlane member and
// joins the star exchange: the lease-holding root paces rounds, the leaves
// report their demand vectors, and every process advances its scheduling
// window from the transport's on_round_start hook, so the whole fleet steps
// window boundaries on the same round tags. The parent pre-picks a real
// ephemeral port for EVERY process — the full mesh is what lets survivors
// find each other when the root dies.
//
// Three phases, all asserted (the demo is a ctest case):
//
//   1. Convergence — every child drives K windows over the wire, then
//      replays the identical schedule on a single-process
//      InProcessTransport fleet and requires its per-window plans, quotas
//      and demand vectors to match *bitwise*. The lockstep wire protocol
//      sums reports in the same member order with the same floating-point
//      order, so "close" is not accepted — equality is.
//
//   2. Rejoin — the highest-index leaf crashes (abrupt _Exit; no goodbye)
//      after three windows. The root prunes it at the next round deadline
//      and rounds RESUME with the smaller membership — no staleness, no
//      conservative fallback. The parent then restarts the leaf with a
//      bumped incarnation: the session layer re-admits it, the next round
//      boundary folds its member back in, and the restarted process planning
//      against delivered aggregates again is what the phase asserts — plus
//      readmissions/reconnects counters on the root.
//
//   3. Election — the ROOT crashes after three windows. The survivors see
//      the lease expire, the lowest live member acquires it (after every
//      lower-index peer refused its dials), rounds resume under the new
//      root, and every survivor's delivered round tags stay strictly
//      monotone across the handover.
//
// Usage: multi_process_demo <scenario.ini>   (see scenarios/multi_process.ini)
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/socket_transport.hpp"
#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "experiments/scenario_ini.hpp"
#include "net/tcp.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/assert.hpp"
#include "util/metrics_registry.hpp"
#include "util/time.hpp"

namespace {

using sharegrid::experiments::ScenarioConfig;

constexpr int kWindows = 8;        // windows compared bitwise in phase 1
constexpr int kChurnWindows = 12;  // windows survivors drive in phases 2/3
constexpr int kCrashAfter = 3;     // victim exits after this many windows

std::int64_t now_usec() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The scheduler run_scenario would build for this config: capacities come
/// from the declared machines, then one ResponseTimeScheduler over the
/// analyzed access levels. The demo keeps to the response-time objective —
/// the transport under test is indifferent to the LP on top of it.
std::unique_ptr<sharegrid::sched::Scheduler> build_scheduler(
    const ScenarioConfig& config, sharegrid::core::AgreementGraph* graph_out) {
  SHAREGRID_EXPECTS(config.scheduler ==
                    sharegrid::experiments::SchedulerKind::kResponseTime);
  sharegrid::core::AgreementGraph graph = config.graph;
  for (sharegrid::core::PrincipalId p = 0; p < graph.size(); ++p)
    graph.set_capacity(p, 0.0);
  for (const auto& spec : config.servers) {
    const sharegrid::core::PrincipalId owner = graph.find(spec.owner);
    SHAREGRID_EXPECTS(owner != sharegrid::core::kNoPrincipal);
    graph.set_capacity(owner, graph.capacity(owner) + spec.capacity);
  }
  *graph_out = graph;
  sharegrid::sched::ResponseTimeOptions options;
  if (!config.locality_caps.empty()) options.locality_caps = config.locality_caps;
  return std::make_unique<sharegrid::sched::ResponseTimeScheduler>(
      *graph_out, sharegrid::core::compute_access_levels(*graph_out), options);
}

sharegrid::coord::ControlPlaneConfig plane_config(const ScenarioConfig& config) {
  sharegrid::coord::ControlPlaneConfig cp;
  cp.window = config.window;
  cp.redirector_count = config.redirector_count;
  cp.stale_policy = config.stale_policy;
  cp.spike_replan_limit = config.spike_replan_limit;
  return cp;
}

/// Deterministic offered load for member `m`, window `k` (1-based): the
/// scenario's client rates scaled by a small per-window pattern, so the
/// demand estimators actually move and the plans differ window to window.
void inject_arrivals(const ScenarioConfig& config,
                     sharegrid::coord::ControlPlane::Member* member,
                     std::size_t m, int k) {
  const double window_sec = sharegrid::to_seconds(config.window);
  for (const auto& client : config.clients) {
    if (client.redirector != m) continue;
    const sharegrid::core::PrincipalId p = config.graph.find(client.principal);
    SHAREGRID_EXPECTS(p != sharegrid::core::kNoPrincipal);
    const double scale =
        0.5 + 0.5 * static_cast<double>((static_cast<std::size_t>(k) + m) % 3);
    member->record_arrival(p, client.rate * window_sec * scale);
  }
}

/// Everything one window boundary decided, captured bitwise.
struct WindowRecord {
  std::vector<double> demand;  // last_local_demand at begin_window
  std::vector<double> quota;   // remaining quota per principal
  std::vector<double> plan;    // full plan rate matrix, row-major
  bool global_valid = false;

  bool operator==(const WindowRecord& o) const {
    return demand == o.demand && quota == o.quota && plan == o.plan &&
           global_valid == o.global_valid;
  }
};

WindowRecord snapshot(const sharegrid::coord::ControlPlane::Member& member) {
  WindowRecord rec;
  rec.demand = member.last_local_demand();
  const std::size_t n = member.size();
  for (std::size_t i = 0; i < n; ++i)
    rec.quota.push_back(member.window_scheduler().remaining_quota(i));
  const auto& plan = member.window_scheduler().last_plan();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      rec.plan.push_back(plan.rate.rows() == 0 ? 0.0 : plan.rate(i, j));
  rec.global_valid = member.global().valid;
  return rec;
}

/// Attaches a single-member plane at its global slot on the shared
/// InProcessTransport. Each forked process registers its one member at
/// member_offset on the wire; the baseline mirrors that addressing.
class OffsetTransport final : public sharegrid::coord::SnapshotTransport {
 public:
  OffsetTransport(sharegrid::coord::InProcessTransport* inner,
                  std::size_t offset)
      : inner_(inner), offset_(offset) {}
  void attach(std::size_t member, Provider provider,
              Receiver receiver) override {
    inner_->attach(offset_ + member, std::move(provider), std::move(receiver));
  }
  void start() override {}
  void stop() override {}
  std::uint64_t messages_sent() const override { return 0; }

 private:
  sharegrid::coord::InProcessTransport* inner_;
  std::size_t offset_;
};

/// One full-fleet run on the synchronous in-process transport — the oracle
/// the socket fleet must match. Window k plans against the aggregate of
/// round k-1, exactly like the wire protocol's lockstep schedule. Each
/// member gets its own plane and scheduler, just like the per-process fleet:
/// the LP solver carries warm-start state between solves, so a scheduler
/// shared across members would see solve sequences no child process does.
std::vector<std::vector<WindowRecord>> run_baseline(
    const ScenarioConfig& config) {
  const std::size_t r = config.redirector_count;
  sharegrid::coord::InProcessTransport transport(r, config.graph.size());
  std::vector<sharegrid::core::AgreementGraph> graphs(r);
  std::vector<std::unique_ptr<sharegrid::sched::Scheduler>> schedulers;
  std::vector<std::unique_ptr<sharegrid::coord::ControlPlane>> planes;
  std::vector<sharegrid::coord::ControlPlane::Member*> members;
  std::vector<OffsetTransport> adapters;
  adapters.reserve(r);
  for (std::size_t m = 0; m < r; ++m) {
    schedulers.push_back(build_scheduler(config, &graphs[m]));
    planes.push_back(std::make_unique<sharegrid::coord::ControlPlane>(
        schedulers[m].get(), plane_config(config)));
    members.push_back(planes[m]->add_member());
    adapters.emplace_back(&transport, m);
    planes[m]->connect(&adapters[m]);
  }
  transport.start();

  std::vector<std::vector<WindowRecord>> records(r);
  for (int k = 1; k <= kWindows; ++k) {
    for (std::size_t m = 0; m < r; ++m) {
      if (k == 1) {
        planes[m]->begin_windows(0);
      } else {
        planes[m]->end_windows();
        planes[m]->begin_windows(static_cast<sharegrid::SimTime>(k - 1) *
                                 config.window);
      }
      inject_arrivals(config, members[m], m, k);
      records[m].push_back(snapshot(*members[m]));
    }
    transport.exchange();
  }
  transport.stop();
  return records;
}

enum class Phase { kConverge, kRejoin, kElection };

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kConverge: return "convergence";
    case Phase::kRejoin: return "leaf-rejoin";
    case Phase::kElection: return "root-election";
  }
  return "?";
}

void print_socket_metrics(std::size_t index) {
  auto& metrics = sharegrid::util::global_metrics();
  std::printf(
      "member %zu metrics: coord.socket.reconnects=%llu "
      "coord.socket.elections=%llu coord.socket.sessions_active=%lld\n",
      index,
      static_cast<unsigned long long>(
          metrics.counter("coord.socket.reconnects").value()),
      static_cast<unsigned long long>(
          metrics.counter("coord.socket.elections").value()),
      static_cast<long long>(
          metrics.gauge("coord.socket.sessions_active").value()));
}

/// Body of one forked redirector process. `incarnation` > 1 marks a restart
/// (the rejoin phase's replacement leaf).
int run_child(const ScenarioConfig& config,
              const std::vector<std::string>& peers, std::size_t index,
              Phase phase, std::uint64_t incarnation) {
  sharegrid::core::AgreementGraph graph;
  const auto scheduler = build_scheduler(config, &graph);
  sharegrid::coord::ControlPlane plane(scheduler.get(), plane_config(config));
  sharegrid::coord::ControlPlane::Member* member = plane.add_member();

  int windows_begun = 0;
  bool round_gap = false;       // convergence: tags must be exactly 1,2,3...
  bool tags_monotone = true;    // churn phases: gaps fine, regressions never
  std::uint64_t last_tag = 0;
  std::vector<WindowRecord> records;

  sharegrid::coord::SocketTransport::Options options;
  options.peers = peers;
  options.process_index = index;
  options.incarnation = incarnation;
  options.member_offset = index;
  options.fleet_size = config.redirector_count;
  options.round_period_usec = 2000;
  options.io_timeout_ms = 20;
  options.allow_nonlocal = config.allow_nonlocal;
  options.election_enabled =
      config.election_enabled && phase == Phase::kElection;
  options.lease_ttl_usec =
      static_cast<std::int64_t>(config.lease_ttl_ms * 1000.0);
  options.heartbeat_usec =
      static_cast<std::int64_t>(config.heartbeat_ms * 1000.0);
  options.reconnect_base_usec =
      static_cast<std::int64_t>(config.reconnect_base_ms * 1000.0);
  options.reconnect_max_usec =
      static_cast<std::int64_t>(config.reconnect_max_ms * 1000.0);
  if (phase == Phase::kConverge) {
    // A deadline generous enough that an abandoned round means something is
    // genuinely wrong (and the bitwise comparison would be void anyway).
    options.round_deadline_usec = 5'000'000;
    options.stale_after_usec = 600'000'000;
  } else {
    // Churn phases: prune a dead peer within one deadline; keep staleness
    // out of the picture (rejoin and election are membership paths, not the
    // degradation path — coverage for that lives in the transport tests).
    options.round_deadline_usec = 40'000;
    options.stale_after_usec = 600'000'000;
  }
  options.on_round_start = [&](std::uint64_t round) {
    ++windows_begun;
    if (round != static_cast<std::uint64_t>(windows_begun)) round_gap = true;
    if (round <= last_tag) tags_monotone = false;
    last_tag = round;
    if (windows_begun == 1) {
      plane.begin_windows(0);
    } else {
      plane.end_windows();
      plane.begin_windows(static_cast<sharegrid::SimTime>(windows_begun - 1) *
                          config.window);
    }
    inject_arrivals(config, member, index, windows_begun);
    if (phase == Phase::kConverge && windows_begun <= kWindows)
      records.push_back(snapshot(*member));
  };

  sharegrid::coord::SocketTransport transport(
      /*local_member_count=*/1, graph.size(), std::move(options));
  plane.connect(&transport);
  transport.start();

  const std::int64_t hard_stop = now_usec() + 60'000'000;  // loaded-CI cap
  const std::size_t victim_index =
      phase == Phase::kElection ? 0 : config.redirector_count - 1;
  const bool victim = phase != Phase::kConverge && index == victim_index &&
                      incarnation == 1;
  int rejoin_window = -1;       // root: window at which the readmit landed
  int last_windows = 0;
  std::int64_t last_progress = now_usec();
  for (;;) {
    const std::int64_t now = now_usec();
    transport.poll(now);
    if (windows_begun != last_windows) {
      last_windows = windows_begun;
      last_progress = now;
    }
    if (phase == Phase::kConverge && windows_begun > kWindows) break;
    if (victim && windows_begun >= kCrashAfter) {
      // Abrupt death: no transport.stop(), no destructors, no FIN handshake
      // beyond what the kernel sends — the fleet must cope with exactly
      // this.
      std::printf("member %zu: crashing after window %d (simulated)\n", index,
                  windows_begun);
      std::fflush(stdout);
      std::_Exit(0);
    }
    if (!victim && phase != Phase::kConverge) {
      bool done = false;
      if (phase == Phase::kRejoin && index == 0) {
        // Root: must witness the prune AND the readmit, then pace enough
        // further rounds for the restarted leaf to plan against fresh
        // aggregates and exit — the pacer leaving first would starve it.
        if (rejoin_window < 0 && transport.readmissions() >= 1 &&
            transport.reconnects() >= 1)
          rejoin_window = windows_begun;
        done = rejoin_window >= 0 && windows_begun >= rejoin_window + 50;
      } else if (incarnation > 1) {
        // Restarted leaf: done once it is planning against delivered
        // aggregates again — folded in at a boundary, not just reconnected.
        done = windows_begun >= kCrashAfter && member->global().valid;
      } else if (phase == Phase::kElection && index == 1) {
        // Election winner becomes the pacer: overshoot the quota so the
        // followers reach theirs before rounds stop.
        done = windows_begun >= kChurnWindows + 50;
      } else if (phase == Phase::kElection) {
        // Follower: exit as soon as the quota is met under the elected
        // root — lingering after the new pacer quits would start a second
        // election (this process is then the lowest live member).
        done = windows_begun >= kChurnWindows && transport.has_root() &&
               transport.root_index() == 1;
      } else {
        // Plain survivor: quota met and rounds have stopped flowing —
        // the phase's pacer has exited, nothing more will arrive.
        done = windows_begun >= kChurnWindows && now - last_progress > 300'000;
      }
      if (done) break;
    }
    if (now > hard_stop) {
      std::fprintf(
          stderr,
          "member %zu: timed out (windows=%d readmissions=%llu "
          "elections=%llu reject=%s)\n",
          index, windows_begun,
          static_cast<unsigned long long>(transport.readmissions()),
          static_cast<unsigned long long>(transport.elections()),
          transport.last_reject_reason().c_str());
      transport.stop();
      return 3;
    }
    usleep(300);
  }
  transport.stop();

  if (phase == Phase::kConverge) {
    // Phase 1: replay the fleet in-process and demand bitwise equality.
    if (round_gap || transport.rounds_abandoned() != 0) {
      std::fprintf(stderr, "member %zu: round abandoned during convergence\n",
                   index);
      return 2;
    }
    if (transport.frames_rejected() != 0) {
      std::fprintf(stderr, "member %zu: rejected frames on a clean run: %s\n",
                   index, transport.last_reject_reason().c_str());
      return 2;
    }
    const auto baseline = run_baseline(config);
    if (records.size() != static_cast<std::size_t>(kWindows) ||
        records != baseline[index]) {
      std::fprintf(stderr,
                   "member %zu: socket plans diverge from InProcessTransport\n",
                   index);
      return 1;
    }
    std::printf(
        "member %zu: %d windows over TCP, plans bitwise-identical to the "
        "in-process baseline (messages_sent=%llu)\n",
        index, kWindows,
        static_cast<unsigned long long>(transport.messages_sent()));
    return 0;
  }

  // Churn phases: tags must never regress, whatever else happened.
  if (!tags_monotone) {
    std::fprintf(stderr, "member %zu: round tags regressed\n", index);
    return 2;
  }
  if (phase == Phase::kRejoin) {
    if (incarnation > 1) {
      if (transport.frames_rejected() != 0) {
        std::fprintf(stderr, "member %zu: restart saw rejected frames: %s\n",
                     index, transport.last_reject_reason().c_str());
        return 2;
      }
      std::printf(
          "member %zu: restarted at incarnation %llu, rejoined and planned "
          "%d windows against fresh aggregates\n",
          index, static_cast<unsigned long long>(incarnation), windows_begun);
    } else if (index == 0) {
      std::printf(
          "member 0: pruned the dead leaf and re-admitted its restart "
          "(readmissions=%llu reconnects=%llu members_live=%zu)\n",
          static_cast<unsigned long long>(transport.readmissions()),
          static_cast<unsigned long long>(transport.reconnects()),
          transport.members_live());
      print_socket_metrics(index);
    }
    return 0;
  }

  // Election phase survivors.
  const std::size_t lowest_survivor = 1;
  if (index == lowest_survivor) {
    if (!transport.is_root() || transport.elections() != 1) {
      std::fprintf(stderr,
                   "member %zu: expected to win the election (root=%d "
                   "elections=%llu)\n",
                   index, transport.is_root() ? 1 : 0,
                   static_cast<unsigned long long>(transport.elections()));
      return 2;
    }
    std::printf(
        "member %zu: acquired the root lease (incarnation %llu) and drove "
        "rounds through window %d\n",
        index, static_cast<unsigned long long>(transport.lease_incarnation()),
        windows_begun);
    print_socket_metrics(index);
  } else {
    if (!transport.has_root() || transport.root_index() != lowest_survivor ||
        transport.elections() != 0) {
      std::fprintf(stderr,
                   "member %zu: expected to follow member %zu (root_index=%zu "
                   "elections=%llu)\n",
                   index, lowest_survivor,
                   transport.has_root() ? transport.root_index() : 999,
                   static_cast<unsigned long long>(transport.elections()));
      return 2;
    }
    std::printf("member %zu: adopted the elected root (member %zu), tags "
                "stayed monotone\n",
                index, transport.root_index());
  }
  return 0;
}

/// Grabs an ephemeral loopback port. A tiny bind race remains between close
/// and the child's re-bind, but SO_REUSEADDR plus the kernel's
/// ephemeral-port rotation make it vanishingly unlikely.
std::uint16_t pick_port() {
  return sharegrid::net::Socket::listen_on_loopback(0).local_port();
}

pid_t fork_child(const ScenarioConfig& config,
                 const std::vector<std::string>& peers, std::size_t index,
                 Phase phase, std::uint64_t incarnation) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  int code = 4;
  try {
    code = run_child(config, peers, index, phase, incarnation);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "member %zu: %s\n", index, e.what());
  }
  std::fflush(stdout);
  std::_Exit(code);
}

bool wait_for(pid_t pid) {
  int status = 0;
  return waitpid(pid, &status, 0) == pid && WIFEXITED(status) &&
         WEXITSTATUS(status) == 0;
}

/// Forks the fleet and waits for every child to exit cleanly. In the rejoin
/// phase the crashed leaf is restarted (same index, incarnation 2) once its
/// first instance has exited.
bool run_phase(const ScenarioConfig& config, Phase phase) {
  // The full mesh gets real ports up front: election and rejoin require
  // every process to be dialable, not just the initial root.
  std::vector<std::string> peers;
  for (std::size_t i = 0; i < config.redirector_count; ++i)
    peers.push_back("127.0.0.1:" + std::to_string(pick_port()));
  std::fflush(stdout);

  std::vector<pid_t> children;
  for (std::size_t i = 0; i < config.redirector_count; ++i) {
    const pid_t pid = fork_child(config, peers, i, phase, 1);
    if (pid < 0) {
      std::perror("fork");
      return false;
    }
    children.push_back(pid);
  }

  bool ok = true;
  if (phase == Phase::kRejoin) {
    // The victim (highest index) crashes first; restart it with a bumped
    // incarnation while the rest of the fleet keeps running. The pause
    // spans several round deadlines so the root demonstrably PRUNES the
    // dead leaf (rounds keep completing without it) before the restart is
    // re-admitted — an instant restart would slot into the open round and
    // the membership gap this phase exists to exercise would never happen.
    const std::size_t victim = config.redirector_count - 1;
    ok = wait_for(children[victim]);
    usleep(150'000);
    children[victim] = ok ? fork_child(config, peers, victim, phase, 2) : -1;
    if (children[victim] < 0) ok = false;
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (children[i] < 0) continue;
    if (!wait_for(children[i])) ok = false;
  }
  std::printf("phase %s: %s\n", phase_name(phase), ok ? "ok" : "FAILED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario.ini>\n", argv[0]);
    return 64;
  }
  ScenarioConfig config;
  try {
    config = sharegrid::experiments::load_scenario_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 64;
  }
  if (config.transport != ScenarioConfig::TransportKind::kSocket) {
    std::fprintf(stderr,
                 "%s: scenario must set [control_plane] transport = socket\n",
                 argv[1]);
    return 64;
  }
  if (config.redirector_count < 3) {
    std::fprintf(stderr,
                 "need at least 3 redirector processes (the election phase "
                 "kills one and still wants a root and a follower)\n");
    return 64;
  }

  std::printf("forking %zu redirector processes over loopback TCP\n",
              config.redirector_count);
  const bool converged = run_phase(config, Phase::kConverge);
  const bool rejoined = converged && run_phase(config, Phase::kRejoin);
  const bool elected = rejoined && run_phase(config, Phase::kElection);
  if (!(converged && rejoined && elected)) return 1;
  std::printf(
      "multi_process_demo: plan-convergence: ok; leaf-rejoin: ok; "
      "root-election: ok\n");
  return 0;
}
