// Service-provider example: one provider, two customers with different
// prices, income-maximizing admission (the paper's §3.1.2 second metric).
// Shows both the window-level planning API and a full simulated run.
//
//   $ ./provider_income
#include <iostream>

#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "sched/income_scheduler.hpp"
#include "util/table.hpp"

int main() {
  using namespace sharegrid;
  using namespace sharegrid::experiments;

  // Provider with 640 req/s; gold pays 2.0 per extra request, bronze 1.0.
  core::AgreementGraph graph;
  const auto provider = graph.add_principal("provider", 640.0);
  const auto gold = graph.add_principal("gold", 0.0);
  const auto bronze = graph.add_principal("bronze", 0.0);
  graph.set_agreement(provider, gold, 0.5, 1.0);
  graph.set_agreement(provider, bronze, 0.2, 0.8);

  // --- Window-level planning --------------------------------------------
  const core::AccessLevels levels = core::compute_access_levels(graph);
  const sched::IncomeScheduler scheduler(graph, levels, provider,
                                         {0.0, 2.0, 1.0});

  std::cout << "Single-window plans (provider capacity 640):\n";
  TextTable table({"demand gold/bronze", "gold", "bronze", "income"});
  for (const auto& [dg, db] : std::vector<std::pair<double, double>>{
           {100.0, 100.0}, {600.0, 600.0}, {50.0, 600.0}}) {
    std::vector<double> demand{0.0, dg, db};
    const sched::Plan plan = scheduler.plan(demand);
    table.add_row({TextTable::num(dg, 0) + "/" + TextTable::num(db, 0),
                   TextTable::num(plan.admitted(gold)),
                   TextTable::num(plan.admitted(bronze)),
                   TextTable::num(scheduler.income(plan))});
  }
  table.print(std::cout);
  std::cout << "\nUnder overload the gold customer gets every request beyond "
               "the mandatory floors;\nbronze is held at its guarantee — "
               "exactly the paper's income-maximizing policy.\n\n";

  // --- Full simulated run -------------------------------------------------
  ScenarioConfig config;
  config.graph = graph;
  config.layer = Layer::kL4;
  config.scheduler = SchedulerKind::kIncome;
  config.provider = "provider";
  config.prices = {0.0, 2.0, 1.0};
  config.servers = {{"provider", 320.0}, {"provider", 320.0}};
  config.clients = {
      {"gold-1", "gold", 0, 400.0, {{0.0, 60.0}}},
      {"gold-2", "gold", 0, 400.0, {{0.0, 60.0}}},
      {"bronze-1", "bronze", 0, 400.0, {{0.0, 120.0}}},
  };
  config.phases = {{"both loaded", 10.0, 55.0}, {"gold idle", 70.0, 115.0}};
  config.duration_sec = 120.0;

  const ScenarioResult result = run_scenario(config);
  std::cout << "Simulated run:\n";
  result.phase_table().print(std::cout);
  std::cout << "\nWhile gold is loaded, bronze is held near its 128 req/s "
               "floor; once gold idles,\nbronze expands into the freed "
               "capacity (bounded by its 0.8 upper bound).\n";
  return 0;
}
