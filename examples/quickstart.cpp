// Quickstart: express agreements, compute access levels, and plan one
// scheduling window — the library's core loop in ~50 lines.
//
//   $ ./quickstart
//
// Models two application service providers pooling resources: Alpha owns
// 800 req/s, Beta owns 400 req/s, and Alpha guarantees Beta 25% (up to 50%)
// of its capacity.
#include <iostream>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/table.hpp"

int main() {
  using namespace sharegrid;

  // 1. Describe who owns what and who may use whose resources.
  core::AgreementGraph graph;
  const auto alpha = graph.add_principal("alpha", 800.0);
  const auto beta = graph.add_principal("beta", 400.0);
  graph.set_agreement(alpha, beta, /*lower_bound=*/0.25, /*upper_bound=*/0.5);

  // 2. Reduce the agreement graph to per-principal access levels
  //    (quasi-static: recompute only when agreements change).
  const core::AccessLevels levels = core::compute_access_levels(graph);
  std::cout << "Access levels (requests/sec):\n";
  TextTable table({"principal", "mandatory (MC)", "best-effort extra (OC)"});
  for (core::PrincipalId p = 0; p < graph.size(); ++p) {
    table.add_row({graph.name(p),
                   TextTable::num(levels.mandatory_capacity[p]),
                   TextTable::num(levels.optional_capacity[p])});
  }
  table.print(std::cout);

  // 3. Each scheduling window, turn observed queue lengths into an
  //    admission plan that honours the agreements and maximizes the
  //    worst-off principal's served fraction.
  const sched::ResponseTimeScheduler scheduler(graph, levels);
  const sched::Plan plan = scheduler.plan({/*alpha=*/900.0, /*beta=*/500.0});

  std::cout << "\nPlan for demand alpha=900, beta=500 (theta="
            << TextTable::num(plan.theta, 3) << "):\n";
  TextTable alloc({"queue", "-> alpha's server", "-> beta's server", "total"});
  for (core::PrincipalId p = 0; p < graph.size(); ++p) {
    alloc.add_row({graph.name(p), TextTable::num(plan.rate(p, alpha)),
                   TextTable::num(plan.rate(p, beta)),
                   TextTable::num(plan.admitted(p))});
  }
  alloc.print(std::cout);

  std::cout << "\nBeta's guaranteed floor is "
            << TextTable::num(levels.mandatory_capacity[beta])
            << " req/s; unused share flows back to alpha automatically.\n";
  return 0;
}
