// Dynamic agreement interpretation (§2.2): when a shared server degrades,
// every entitlement derived from it shrinks automatically — no agreement is
// renegotiated, because tickets convey *fractions* of a currency whose value
// floats with the physical resources.
//
// Community of two: B shares [0.5, 0.5] of its server with A. At t=40 B's
// machine browns out from 320 to 160 req/s; at t=80 it recovers.
//
//   $ ./failover
#include <iostream>

#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace sharegrid;
  using namespace sharegrid::experiments;

  core::AgreementGraph graph;
  const auto a = graph.add_principal("A", 0.0);
  const auto b = graph.add_principal("B", 0.0);
  graph.set_agreement(b, a, 0.5, 0.5);

  ScenarioConfig config;
  config.graph = graph;
  config.layer = Layer::kL4;
  config.servers = {{"A", 320.0}, {"B", 320.0}};
  config.clients = {
      {"A1", "A", 0, 400.0, {{0.0, 120.0}}},
      {"A2", "A", 0, 400.0, {{0.0, 120.0}}},
      {"B1", "B", 0, 400.0, {{0.0, 120.0}}},
  };
  // B's machine (index 1) browns out, then recovers.
  config.capacity_events = {{40.0, 1, 160.0}, {80.0, 1, 320.0}};
  config.phases = {{"healthy", 10.0, 38.0},
                   {"brownout", 45.0, 78.0},
                   {"recovered", 85.0, 118.0}};
  config.duration_sec = 120.0;

  std::cout
      << "Failover: B's server degrades 320 -> 160 req/s at t=40 and "
         "recovers at t=80.\nA's share of B's machine is a fraction (0.5), "
         "so A's entitlement tracks the degradation\nwithout touching the "
         "agreement itself:\n\n";

  const ScenarioResult result = run_scenario(config);
  result.phase_table().print(std::cout);

  std::cout << "\nHealthy:   A = 320 + 160 = 480, B = 160\n"
               "Brownout:  A = 320 +  80 = 400, B =  80 (half of 160)\n"
               "Recovered: back to 480 / 160 — the currency re-inflates.\n";
  (void)a;
  (void)b;
  return 0;
}
