// Run any experiment described in a scenario file — no recompilation.
//
//   $ ./run_scenario_file ../examples/scenarios/community.ini
//   $ ./run_scenario_file ../examples/scenarios/provider.ini --csv
//
// Prints the per-phase averages and (optionally) the per-second series as
// CSV for plotting. See src/experiments/scenario_ini.hpp for the format.
#include <cstring>
#include <iostream>

#include "experiments/scenario.hpp"
#include "experiments/scenario_ini.hpp"
#include "util/metrics_registry.hpp"

int main(int argc, char** argv) {
  using namespace sharegrid;
  using namespace sharegrid::experiments;

  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <scenario.ini> [--csv]\n";
    return 2;
  }
  const bool csv = argc >= 3 && std::strcmp(argv[2], "--csv") == 0;

  try {
    const ScenarioConfig config = load_scenario_file(argv[1]);
    const ScenarioResult result = run_scenario(config);

    if (csv) {
      result.series_table().print_csv(std::cout);
      return 0;
    }
    std::cout << "Scenario: " << argv[1] << "\n\n";
    if (!result.phase_reports.empty()) {
      result.phase_table().print(std::cout);
    } else {
      result.series_table().print(std::cout);
    }
    std::cout << "\ncoordination messages: " << result.coordination_messages
              << ", peak server backlog: "
              << TextTable::num(result.server_backlog_sec.max(), 3) << " s\n";
    std::cout << "\n";
    util::global_metrics().report(std::cout);
  } catch (const ContractViolation& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
