// A federation at scale: five organizations, a web of peer-to-peer and
// provider agreements (the paper's Figure 2 landscape), two redirectors,
// six servers, diurnal-ish load phases — the kind of deployment the paper's
// introduction motivates (content distribution across autonomous clusters).
//
//   $ ./cdn_federation
//
// Organizations:
//   edge-east, edge-west  — two regional CDN operators with their own
//                           clusters, cross-peered at [0.3, 0.5]
//   core                  — a backbone provider selling to both edges
//                           [0.2, 0.4] each, and to "tenant" [0.25, 0.6]
//   tenant                — a SaaS company with no hardware at all
//   labs                  — a research org given best-effort-only access
//                           to core ([0, 0.3]: no guarantee, real ceiling)
#include <iostream>

#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace sharegrid;
  using namespace sharegrid::experiments;

  core::AgreementGraph g;
  const auto east = g.add_principal("edge-east", 0.0);
  const auto west = g.add_principal("edge-west", 0.0);
  const auto core_net = g.add_principal("core", 0.0);
  const auto tenant = g.add_principal("tenant", 0.0);
  const auto labs = g.add_principal("labs", 0.0);

  g.set_agreement(east, west, 0.3, 0.5);  // peering, both directions
  g.set_agreement(west, east, 0.3, 0.5);
  g.set_agreement(core_net, east, 0.2, 0.4);
  g.set_agreement(core_net, west, 0.2, 0.4);
  g.set_agreement(core_net, tenant, 0.25, 0.6);
  g.set_agreement(core_net, labs, 0.0, 0.3);  // best effort only

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL4;
  c.redirector_count = 2;
  c.servers = {{"edge-east", 240.0}, {"edge-east", 240.0},
               {"edge-west", 240.0}, {"edge-west", 240.0},
               {"core", 320.0},      {"core", 320.0}};
  // 2080 req/s of physical capacity across the federation.
  c.clients = {
      // East is slammed the whole run; west only in the middle third.
      {"east-1", "edge-east", 0, 400.0, {{0.0, 180.0}}},
      {"east-2", "edge-east", 0, 400.0, {{0.0, 180.0}}},
      {"east-3", "edge-east", 0, 400.0, {{0.0, 180.0}}},
      {"west-1", "edge-west", 1, 400.0, {{60.0, 120.0}}},
      {"west-2", "edge-west", 1, 400.0, {{60.0, 120.0}}},
      // The tenant's steady SaaS traffic, entering via east's redirector.
      {"tenant-1", "tenant", 0, 400.0, {{0.0, 180.0}}},
      // Labs runs batch crawls all day and takes whatever is left.
      {"labs-1", "labs", 1, 400.0, {{0.0, 180.0}}},
  };
  c.phases = {{"west idle", 10.0, 55.0},
              {"everyone on", 70.0, 115.0},
              {"west idle again", 130.0, 175.0}};
  c.duration_sec = 180.0;

  std::cout << "Federation of 5 organizations, 6 servers, 2 redirectors, "
               "2080 req/s total capacity\n\n";
  const core::AccessLevels levels = core::compute_access_levels(g);
  {
    core::AgreementGraph sized = g;
    sized.set_capacity(east, 480.0);
    sized.set_capacity(west, 480.0);
    sized.set_capacity(core_net, 640.0);
    const core::AccessLevels lv = core::compute_access_levels(sized);
    TextTable t({"org", "guaranteed (req/s)", "best-effort extra (req/s)"});
    for (core::PrincipalId p = 0; p < sized.size(); ++p)
      t.add_row({sized.name(p), TextTable::num(lv.mandatory_capacity[p]),
                 TextTable::num(lv.optional_capacity[p])});
    t.print(std::cout);
  }
  (void)levels;

  const ScenarioResult result = run_scenario(c);
  std::cout << "\nMeasured phase averages:\n";
  result.phase_table().print(std::cout);

  std::cout
      << "\nReading the run:\n"
         "  - while west idles, east overflows onto west's and core's "
         "hardware;\n"
         "  - when west wakes, everyone contracts toward their guaranteed "
         "levels;\n"
         "  - the tenant's guarantee holds throughout despite owning no "
         "servers;\n"
         "  - labs soaks up slack but is squeezed hard at full contention "
         "(no lb).\n"
      << "\nCoordination cost: " << result.coordination_messages
      << " tree messages; peak server backlog "
      << TextTable::num(result.server_backlog_sec.max(), 2) << " s\n";
  return 0;
}
