// Hierarchical agreements (§2.1): an ASP resells capacity through a
// sub-ASP, whose customer is served out of the ASP's physical servers
// purely via the transitive flow of tickets — the customer has no direct
// agreement with the resource owner.
//
//   asp (640 req/s) --[0.5, 0.8]--> reseller --[0.6, 1.0]--> customer
//
//   $ ./hierarchical_asp
#include <iostream>

#include "core/flow.hpp"
#include "experiments/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace sharegrid;
  using namespace sharegrid::experiments;

  core::AgreementGraph graph;
  const auto asp = graph.add_principal("asp", 640.0);
  const auto reseller = graph.add_principal("reseller", 0.0);
  const auto customer = graph.add_principal("customer", 0.0);
  graph.set_agreement(asp, reseller, 0.5, 0.8);
  graph.set_agreement(reseller, customer, 0.6, 1.0);

  // --- Static analysis: what does the chain entitle everyone to? ---------
  const core::AccessLevels levels = core::compute_access_levels(graph);
  std::cout << "Access levels through the reseller chain:\n";
  TextTable table({"principal", "mandatory (req/s)", "best-effort (req/s)"});
  for (core::PrincipalId p = 0; p < graph.size(); ++p) {
    table.add_row({graph.name(p),
                   TextTable::num(levels.mandatory_capacity[p]),
                   TextTable::num(levels.optional_capacity[p])});
  }
  table.print(std::cout);
  std::cout << "\nThe customer's " << TextTable::num(
                   levels.mandatory_capacity[customer])
            << " req/s guarantee is backed entirely by the ASP's hardware,\n"
               "two tickets removed: 640 * 0.5 (asp->reseller) * 0.6 "
               "(reseller->customer) = 192.\n\n";

  // --- Dynamic enforcement under load -------------------------------------
  ScenarioConfig config;
  config.graph = graph;
  config.layer = Layer::kL4;
  config.scheduler = SchedulerKind::kResponseTime;
  config.servers = {{"asp", 320.0}, {"asp", 320.0}};
  config.clients = {
      // The ASP's own direct workload (it retains at least 20%).
      {"asp-direct", "asp", 0, 400.0, {{0.0, 90.0}}},
      {"asp-direct2", "asp", 0, 400.0, {{0.0, 90.0}}},
      // The reseller's own customers.
      {"resold", "reseller", 0, 400.0, {{0.0, 90.0}}},
      // The end customer, two hops from the hardware.
      {"end-cust", "customer", 0, 400.0, {{0.0, 90.0}}},
  };
  config.phases = {{"all competing", 10.0, 85.0}};
  config.duration_sec = 90.0;

  const ScenarioResult result = run_scenario(config);
  std::cout << "Under full contention, served rates match the chain's "
               "mandatory levels:\n";
  result.phase_table().print(std::cout);
  std::cout << "\nasp keeps ~" << TextTable::num(
                   levels.mandatory_capacity[asp])
            << ", reseller ~" << TextTable::num(
                   levels.mandatory_capacity[reseller])
            << ", customer ~" << TextTable::num(
                   levels.mandatory_capacity[customer])
            << " req/s - enforcement needs no knowledge of the hierarchy.\n";
  return 0;
}
