// Community sharing end-to-end: two organizations pool their server
// clusters through a [0.5, 0.5] agreement and a Layer-4 redirector, and the
// busier organization transparently overflows onto its partner's hardware —
// the paper's Figure 9 scenario driven through the public scenario API.
//
//   $ ./community_sharing
#include <iostream>

#include "experiments/scenario.hpp"

int main() {
  using namespace sharegrid;
  using namespace sharegrid::experiments;

  // Two peer organizations; Beta cedes half of its server to Alpha.
  core::AgreementGraph graph;
  const auto alpha = graph.add_principal("alpha", 0.0);
  const auto beta = graph.add_principal("beta", 0.0);
  graph.set_agreement(beta, alpha, 0.5, 0.5);

  ScenarioConfig config;
  config.graph = graph;
  config.layer = Layer::kL4;
  config.scheduler = SchedulerKind::kResponseTime;
  config.servers = {{"alpha", 320.0}, {"beta", 320.0}};
  config.clients = {
      // Alpha's burst: two machines for the first half of the run.
      {"alpha-1", "alpha", 0, 400.0, {{0.0, 60.0}}},
      {"alpha-2", "alpha", 0, 400.0, {{0.0, 60.0}}},
      // Beta's steady load.
      {"beta-1", "beta", 0, 400.0, {{0.0, 120.0}}},
  };
  config.phases = {{"alpha bursting", 10.0, 55.0},
                   {"alpha idle", 70.0, 115.0}};
  config.duration_sec = 120.0;

  std::cout << "Community sharing: alpha bursts across both clusters, then "
               "beta reclaims its capacity.\n\n";
  const ScenarioResult result = run_scenario(config);
  result.phase_table().print(std::cout);

  std::cout << "\nDuring the burst alpha is served at ~480 req/s (its own "
               "320 plus half of beta's 320)\nwhile beta keeps its "
               "guaranteed 160; afterwards beta runs at its full 320.\n";
  std::cout << "\nMean latency: alpha "
            << result.metrics.latency(alpha).mean() * 1e3 << " ms, beta "
            << result.metrics.latency(beta).mean() * 1e3 << " ms\n";
  return 0;
}
